//! Hand-rolled command-line argument parsing for the `hyperpraw` tool.
//!
//! Algorithm and connectivity selection parse straight into the facade's
//! [`Algorithm`] and [`Connectivity`] types — the CLI owns no partitioner
//! enums of its own.

use std::fmt;
use std::path::PathBuf;

use hyperpraw::api::Algorithm;
use hyperpraw::core::{Connectivity, ParallelMode};

/// Machine model preset selectable from the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachinePreset {
    /// ARCHER-like Cray hierarchy (the paper's testbed).
    Archer,
    /// Dual-socket commodity cluster.
    Cluster,
    /// Cloud-like oversubscribed tiers.
    Cloud,
    /// Homogeneous (flat) network.
    Flat,
}

impl MachinePreset {
    pub(crate) fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "archer" => Ok(Self::Archer),
            "cluster" => Ok(Self::Cluster),
            "cloud" => Ok(Self::Cloud),
            "flat" => Ok(Self::Flat),
            other => Err(ParseError::InvalidValue {
                option: "--machine".into(),
                value: other.into(),
                expected: "archer | cluster | cloud | flat".into(),
            }),
        }
    }
}

/// How the `lowmem` subcommand reads its input stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFormat {
    /// Sniff the file: compressed when it carries the `.hpz` magic,
    /// the on-disk transpose reader otherwise.
    Auto,
    /// Force the uncompressed transpose reader (`.hgr` / edge list).
    Transpose,
    /// Force the block-compressed CSR reader; `.hgr` / edge-list inputs
    /// are converted to a temporary compressed file first.
    Compressed,
}

impl StreamFormat {
    pub(crate) fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "auto" => Ok(Self::Auto),
            "transpose" => Ok(Self::Transpose),
            "compressed" => Ok(Self::Compressed),
            other => Err(ParseError::InvalidValue {
                option: "--format".into(),
                value: other.into(),
                expected: "auto | transpose | compressed".into(),
            }),
        }
    }
}

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// Subcommands of the tool.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Print the statistics of a hypergraph file (Table 1 style).
    Stats {
        /// Input file (`.hgr`, `.mtx` or edge list).
        input: PathBuf,
    },
    /// Partition a hypergraph file in streaming passes under a memory
    /// budget (`hyperpraw-lowmem`), without loading it into RAM.
    LowMem {
        /// Input file (`.hgr` or edge list; `.mtx` is not streamable).
        input: PathBuf,
        /// Number of partitions (compute units).
        parts: u32,
        /// Sketch/buffer memory budget in mebibytes.
        budget_mib: usize,
        /// Use the exact (unbounded-memory) connectivity index instead of
        /// the Bloom/MinHash sketches.
        exact: bool,
        /// Number of lowest-confidence assignments to revisit; `None`
        /// derives it from the budget.
        restream: Option<usize>,
        /// Number of streaming passes over the input (out-of-core
        /// restreaming when above 1).
        passes: usize,
        /// Rebuild the sketches between passes to shed staleness.
        rebuild_sketches: bool,
        /// Worker threads for parallel streaming (1 = sequential, 0 =
        /// auto-detect the machine parallelism).
        threads: usize,
        /// Worker scheduling: deterministic BSP windows or lock-free work
        /// stealing.
        parallel_mode: ParallelMode,
        /// Machine preset used to derive the cost matrix.
        machine: MachinePreset,
        /// RNG seed.
        seed: u64,
        /// Where to write the assignment (one partition id per line).
        output: Option<PathBuf>,
        /// Emit the `PartitionReport` as JSON on stdout instead of the
        /// text summary.
        json: bool,
        /// Also write the JSON report to this path.
        json_out: Option<PathBuf>,
        /// How to read the input stream (transpose vs compressed CSR).
        format: StreamFormat,
        /// Disable background block prefetch on the compressed path.
        no_prefetch: bool,
        /// Dump the run's telemetry registry (engine/storage metrics) as
        /// JSON to this path.
        metrics_out: Option<PathBuf>,
    },
    /// Convert a hypergraph file to the block-compressed CSR format.
    Convert {
        /// Input file (`.hgr` or edge list).
        input: PathBuf,
        /// Output `.hpz` path.
        output: PathBuf,
        /// Target encoded bytes per block.
        block_bytes: u32,
    },
    /// Generate a synthetic mesh hypergraph and write it as `.hgr`.
    Generate {
        /// Output `.hgr` path.
        output: PathBuf,
        /// Number of vertices.
        vertices: usize,
        /// Target hyperedge cardinality.
        cardinality: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Partition a hypergraph file.
    Partition {
        /// Input file (`.hgr`, `.mtx` or edge list).
        input: PathBuf,
        /// Number of partitions (compute units).
        parts: u32,
        /// Algorithm to use (any facade [`Algorithm`]).
        algorithm: Algorithm,
        /// Machine preset used to derive the cost matrix (aware) and the
        /// benchmark link model.
        machine: MachinePreset,
        /// Imbalance tolerance.
        imbalance: f64,
        /// Connectivity provider for the HyperPRAW algorithms (ignored by
        /// the multilevel and round-robin baselines).
        connectivity: Connectivity,
        /// Worker threads for the parallel algorithms (`None` keeps each
        /// driver's default; `0` auto-detects the machine parallelism).
        threads: Option<usize>,
        /// Worker scheduling of the parallel algorithms: deterministic BSP
        /// windows or lock-free work stealing.
        parallel_mode: ParallelMode,
        /// RNG seed.
        seed: u64,
        /// Where to write the assignment (one partition id per line); stdout
        /// summary only when absent.
        output: Option<PathBuf>,
        /// Emit the `PartitionReport` as JSON on stdout instead of the
        /// text summary.
        json: bool,
        /// Also write the JSON report to this path.
        json_out: Option<PathBuf>,
        /// Dump the run's telemetry registry (engine metrics) as JSON to
        /// this path.
        metrics_out: Option<PathBuf>,
    },
    /// Profile a machine preset and write its bandwidth matrix as CSV.
    Profile {
        /// Machine preset.
        machine: MachinePreset,
        /// Number of compute units.
        procs: usize,
        /// Output CSV path (stdout when absent).
        output: Option<PathBuf>,
    },
    /// Run a long-lived partitioning daemon speaking newline-delimited
    /// JSON: `partition`, `update`, `lookup`, `report` and `shutdown`
    /// requests against a resident dynamic session.
    Serve {
        /// TCP address to listen on.
        bind: String,
        /// Serve a single session over stdin/stdout instead of TCP.
        stdio: bool,
        /// Snapshot + write-ahead-journal directory for crash-safe
        /// sessions (in-memory only when absent).
        state_dir: Option<PathBuf>,
        /// Maximum accepted request-line size in bytes.
        max_line_bytes: usize,
        /// Per-connection read timeout in seconds.
        read_timeout_secs: u64,
        /// Fold the journal into a fresh snapshot every N batches.
        snapshot_every: u64,
        /// Serve a Prometheus-style plain-text metrics exposition on this
        /// address (`None` disables the endpoint).
        metrics_addr: Option<String>,
    },
    /// Run the synthetic benchmark for an existing assignment.
    Benchmark {
        /// Input hypergraph file.
        input: PathBuf,
        /// Assignment file (one partition id per line).
        assignment: PathBuf,
        /// Machine preset.
        machine: MachinePreset,
        /// Message payload in bytes.
        message_bytes: u64,
        /// Number of supersteps.
        supersteps: usize,
    },
}

/// Errors produced while parsing the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` / `-h` was requested.
    HelpRequested,
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not recognised.
    UnknownCommand(String),
    /// A required positional argument is missing.
    MissingArgument(String),
    /// An option was given without a value.
    MissingValue(String),
    /// An option value could not be parsed.
    InvalidValue {
        /// The option name.
        option: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// An unknown option was encountered.
    UnknownOption(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HelpRequested => write!(f, "help requested"),
            Self::MissingCommand => write!(f, "missing subcommand"),
            Self::UnknownCommand(c) => write!(f, "unknown subcommand '{c}'"),
            Self::MissingArgument(a) => write!(f, "missing required argument <{a}>"),
            Self::MissingValue(o) => write!(f, "option {o} requires a value"),
            Self::InvalidValue {
                option,
                value,
                expected,
            } => write!(
                f,
                "invalid value '{value}' for {option} (expected {expected})"
            ),
            Self::UnknownOption(o) => write!(f, "unknown option '{o}'"),
        }
    }
}

impl std::error::Error for ParseError {}

/// The usage string printed by `--help` and on parse errors.
pub fn usage() -> String {
    "hyperpraw — architecture-aware hypergraph partitioning (ICPP 2019 reproduction)\n\
     \n\
     USAGE:\n\
       hyperpraw stats     <input>\n\
       hyperpraw partition <input> --parts N\n\
                           [--algorithm aware|basic|parallel|parallel-basic|lowmem|lowmem-exact|multilevel|round-robin]\n\
                           [--machine archer|cluster|cloud|flat] [--imbalance 1.1]\n\
                           [--connectivity csr|adjacency|auto] [--threads N|0=auto]\n\
                           [--parallel-mode bsp|steal] [--seed N]\n\
                           [--output assignment.txt] [--json] [--json-out report.json]\n\
                           [--metrics-out metrics.json]\n\
       hyperpraw lowmem    <input> --parts N [--budget-mib 64] [--exact] [--restream K]\n\
                           [--passes N] [--rebuild-sketches] [--threads N|0=auto]\n\
                           [--parallel-mode bsp|steal]\n\
                           [--machine archer|cluster|cloud|flat] [--seed N]\n\
                           [--format auto|transpose|compressed] [--no-prefetch]\n\
                           [--output assignment.txt] [--json] [--json-out report.json]\n\
                           [--metrics-out metrics.json]\n\
       hyperpraw convert   <input> <output.hpz> [--block-bytes 65536]\n\
       hyperpraw generate  <output.hgr> [--vertices 10000] [--cardinality 16] [--seed N]\n\
       hyperpraw profile   --machine archer|cluster|cloud|flat --procs N [--output bw.csv]\n\
       hyperpraw benchmark <input> <assignment> [--machine archer|...] [--bytes 1024] [--supersteps 1]\n\
       hyperpraw serve     [--bind 127.0.0.1:7700] [--stdio] [--state-dir DIR]\n\
                           [--max-line-bytes N] [--read-timeout-secs N] [--snapshot-every N]\n\
                           [--metrics-addr 127.0.0.1:9100]\n\
     \n\
     All algorithms dispatch through the facade's unified PartitionJob API; --json emits the\n\
     common PartitionReport as machine-readable JSON.\n\
     serve keeps a dynamic session resident and answers one JSON request per line:\n\
       {\"op\":\"partition\",...} {\"op\":\"update\",...} {\"op\":\"lookup\",...} {\"op\":\"report\"} {\"op\":\"shutdown\"}\n\
     With --state-dir every accepted update batch is journaled (fsynced) before it is\n\
     acknowledged and snapshots fold the journal in; on restart the daemon recovers the\n\
     session bit-identically, truncating any torn journal tail.\n\
     Input formats: hMetis .hgr, MatrixMarket .mtx (row-net model), anything else is read\n\
     as a whitespace edge list (one hyperedge per line, 0-based vertex ids).\n\
     convert writes the block-compressed vertex-major CSR (.hpz); lowmem streams it directly\n\
     (--format auto sniffs the magic) with a background prefetch thread decoding the next\n\
     block while the engine consumes the current one."
        .to_string()
}

/// Numeric option parsing helper.
fn parse_number<T: std::str::FromStr>(option: &str, value: &str) -> Result<T, ParseError> {
    value.parse().map_err(|_| ParseError::InvalidValue {
        option: option.into(),
        value: value.into(),
        expected: "a number".into(),
    })
}

fn parse_algorithm(value: &str) -> Result<Algorithm, ParseError> {
    Algorithm::parse(value).map_err(|_| ParseError::InvalidValue {
        option: "--algorithm".into(),
        value: value.into(),
        expected: Algorithm::expected_names().into(),
    })
}

fn parse_connectivity(value: &str) -> Result<Connectivity, ParseError> {
    Connectivity::parse(value).map_err(|_| ParseError::InvalidValue {
        option: "--connectivity".into(),
        value: value.into(),
        expected: Connectivity::expected_names().into(),
    })
}

fn parse_parallel_mode(value: &str) -> Result<ParallelMode, ParseError> {
    ParallelMode::parse(value).ok_or_else(|| ParseError::InvalidValue {
        option: "--parallel-mode".into(),
        value: value.into(),
        expected: "bsp | steal".into(),
    })
}

impl Cli {
    /// Parses an argument vector (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ParseError> {
        let args: Vec<String> = argv.into_iter().collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            return Err(ParseError::HelpRequested);
        }
        let mut it = args.into_iter();
        let command = it.next().ok_or(ParseError::MissingCommand)?;
        let rest: Vec<String> = it.collect();
        match command.as_str() {
            "stats" => {
                let input = positional(&rest, 0, "input")?;
                Ok(Self {
                    command: Command::Stats {
                        input: PathBuf::from(input),
                    },
                })
            }
            "partition" => {
                let input = positional(&rest, 0, "input")?;
                let mut parts: Option<u32> = None;
                let mut algorithm = Algorithm::HyperPrawAware;
                let mut machine = MachinePreset::Archer;
                let mut imbalance = 1.1f64;
                let mut connectivity = Connectivity::default();
                let mut threads: Option<usize> = None;
                let mut parallel_mode = ParallelMode::Bsp;
                let mut seed = 2019u64;
                let mut output = None;
                let mut json = false;
                let mut json_out = None;
                let mut metrics_out = None;
                let mut i = 1;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--parts" | "-p" => {
                            parts = Some(parse_number(opt, value(&rest, &mut i)?)?);
                        }
                        "--algorithm" | "-a" => {
                            algorithm = parse_algorithm(value(&rest, &mut i)?)?;
                        }
                        "--machine" | "-m" => {
                            machine = MachinePreset::parse(value(&rest, &mut i)?)?;
                        }
                        "--imbalance" => {
                            imbalance = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--connectivity" | "-c" => {
                            connectivity = parse_connectivity(value(&rest, &mut i)?)?;
                        }
                        "--threads" | "-t" => {
                            threads = Some(parse_number(opt, value(&rest, &mut i)?)?);
                        }
                        "--parallel-mode" => {
                            parallel_mode = parse_parallel_mode(value(&rest, &mut i)?)?;
                        }
                        "--seed" => {
                            seed = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--output" | "-o" => {
                            output = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        "--json" => {
                            json = true;
                        }
                        "--json-out" => {
                            json_out = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        "--metrics-out" => {
                            metrics_out = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::Partition {
                        input: PathBuf::from(input),
                        parts: parts.ok_or_else(|| ParseError::MissingValue("--parts".into()))?,
                        algorithm,
                        machine,
                        imbalance,
                        connectivity,
                        threads,
                        parallel_mode,
                        seed,
                        output,
                        json,
                        json_out,
                        metrics_out,
                    },
                })
            }
            "lowmem" => {
                let input = positional(&rest, 0, "input")?;
                let mut parts: Option<u32> = None;
                let mut budget_mib = 64usize;
                let mut exact = false;
                let mut restream = None;
                let mut passes = 1usize;
                let mut rebuild_sketches = false;
                let mut threads = 1usize;
                let mut parallel_mode = ParallelMode::Bsp;
                let mut machine = MachinePreset::Archer;
                let mut seed = 2019u64;
                let mut output = None;
                let mut json = false;
                let mut json_out = None;
                let mut metrics_out = None;
                let mut format = StreamFormat::Auto;
                let mut no_prefetch = false;
                let mut i = 1;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--parts" | "-p" => {
                            parts = Some(parse_number(opt, value(&rest, &mut i)?)?);
                        }
                        "--format" | "-f" => {
                            format = StreamFormat::parse(value(&rest, &mut i)?)?;
                        }
                        "--no-prefetch" => {
                            no_prefetch = true;
                        }
                        "--budget-mib" | "-b" => {
                            budget_mib = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--exact" => {
                            exact = true;
                        }
                        "--restream" => {
                            restream = Some(parse_number(opt, value(&rest, &mut i)?)?);
                        }
                        "--passes" => {
                            passes = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--rebuild-sketches" => {
                            rebuild_sketches = true;
                        }
                        "--threads" | "-t" => {
                            threads = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--parallel-mode" => {
                            parallel_mode = parse_parallel_mode(value(&rest, &mut i)?)?;
                        }
                        "--machine" | "-m" => {
                            machine = MachinePreset::parse(value(&rest, &mut i)?)?;
                        }
                        "--seed" => {
                            seed = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--output" | "-o" => {
                            output = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        "--json" => {
                            json = true;
                        }
                        "--json-out" => {
                            json_out = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        "--metrics-out" => {
                            metrics_out = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::LowMem {
                        input: PathBuf::from(input),
                        parts: parts.ok_or_else(|| ParseError::MissingValue("--parts".into()))?,
                        budget_mib,
                        exact,
                        restream,
                        passes,
                        rebuild_sketches,
                        threads,
                        parallel_mode,
                        machine,
                        seed,
                        output,
                        json,
                        json_out,
                        format,
                        no_prefetch,
                        metrics_out,
                    },
                })
            }
            "convert" => {
                let input = positional(&rest, 0, "input")?;
                let output = positional(&rest, 1, "output")?;
                let mut block_bytes = 64 * 1024u32;
                let mut i = 2;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--block-bytes" => {
                            block_bytes = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::Convert {
                        input: PathBuf::from(input),
                        output: PathBuf::from(output),
                        block_bytes,
                    },
                })
            }
            "generate" => {
                let output = positional(&rest, 0, "output")?;
                let mut vertices = 10_000usize;
                let mut cardinality = 16usize;
                let mut seed = 2019u64;
                let mut i = 1;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--vertices" | "-n" => {
                            vertices = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--cardinality" | "-c" => {
                            cardinality = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--seed" => {
                            seed = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::Generate {
                        output: PathBuf::from(output),
                        vertices,
                        cardinality,
                        seed,
                    },
                })
            }
            "profile" => {
                let mut machine = MachinePreset::Archer;
                let mut procs: Option<usize> = None;
                let mut output = None;
                let mut i = 0;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--machine" | "-m" => {
                            machine = MachinePreset::parse(value(&rest, &mut i)?)?;
                        }
                        "--procs" | "-n" => {
                            procs = Some(parse_number(opt, value(&rest, &mut i)?)?);
                        }
                        "--output" | "-o" => {
                            output = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::Profile {
                        machine,
                        procs: procs.ok_or_else(|| ParseError::MissingValue("--procs".into()))?,
                        output,
                    },
                })
            }
            "serve" => {
                let mut bind = String::from("127.0.0.1:7700");
                let mut stdio = false;
                let mut state_dir = None;
                let mut max_line_bytes = 16 * 1024 * 1024;
                let mut read_timeout_secs = 30;
                let mut snapshot_every = 64;
                let mut metrics_addr = None;
                let mut i = 0;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--bind" => {
                            bind = value(&rest, &mut i)?.to_string();
                        }
                        "--stdio" => {
                            stdio = true;
                        }
                        "--state-dir" => {
                            state_dir = Some(PathBuf::from(value(&rest, &mut i)?));
                        }
                        "--max-line-bytes" => {
                            max_line_bytes =
                                parse_number("--max-line-bytes", value(&rest, &mut i)?)?;
                        }
                        "--read-timeout-secs" => {
                            read_timeout_secs =
                                parse_number("--read-timeout-secs", value(&rest, &mut i)?)?;
                        }
                        "--snapshot-every" => {
                            snapshot_every =
                                parse_number("--snapshot-every", value(&rest, &mut i)?)?;
                        }
                        "--metrics-addr" => {
                            metrics_addr = Some(value(&rest, &mut i)?.to_string());
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::Serve {
                        bind,
                        stdio,
                        state_dir,
                        max_line_bytes,
                        read_timeout_secs,
                        snapshot_every,
                        metrics_addr,
                    },
                })
            }
            "benchmark" => {
                let input = positional(&rest, 0, "input")?;
                let assignment = positional(&rest, 1, "assignment")?;
                let mut machine = MachinePreset::Archer;
                let mut message_bytes = 1024u64;
                let mut supersteps = 1usize;
                let mut i = 2;
                while i < rest.len() {
                    let opt = rest[i].as_str();
                    match opt {
                        "--machine" | "-m" => {
                            machine = MachinePreset::parse(value(&rest, &mut i)?)?;
                        }
                        "--bytes" => {
                            message_bytes = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        "--supersteps" => {
                            supersteps = parse_number(opt, value(&rest, &mut i)?)?;
                        }
                        other => return Err(ParseError::UnknownOption(other.into())),
                    }
                    i += 1;
                }
                Ok(Self {
                    command: Command::Benchmark {
                        input: PathBuf::from(input),
                        assignment: PathBuf::from(assignment),
                        machine,
                        message_bytes,
                        supersteps,
                    },
                })
            }
            other => Err(ParseError::UnknownCommand(other.into())),
        }
    }
}

fn positional<'a>(rest: &'a [String], index: usize, name: &str) -> Result<&'a str, ParseError> {
    rest.get(index)
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with('-'))
        .ok_or_else(|| ParseError::MissingArgument(name.into()))
}

fn value<'a>(rest: &'a [String], i: &mut usize) -> Result<&'a str, ParseError> {
    let opt = rest[*i].clone();
    *i += 1;
    rest.get(*i)
        .map(|s| s.as_str())
        .ok_or(ParseError::MissingValue(opt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(|x| x.to_string())
    }

    #[test]
    fn parses_stats() {
        let cli = Cli::parse(argv("stats graph.hgr")).unwrap();
        assert_eq!(
            cli.command,
            Command::Stats {
                input: PathBuf::from("graph.hgr")
            }
        );
    }

    #[test]
    fn parses_partition_with_defaults_and_overrides() {
        let cli = Cli::parse(argv(
            "partition app.hgr --parts 96 -a multilevel -m cloud --imbalance 1.05 \
             --connectivity csr --threads 3 --seed 7 -o out.txt --json --json-out r.json \
             --metrics-out m.json",
        ))
        .unwrap();
        match cli.command {
            Command::Partition {
                input,
                parts,
                algorithm,
                machine,
                imbalance,
                connectivity,
                threads,
                parallel_mode,
                seed,
                output,
                json,
                json_out,
                metrics_out,
            } => {
                assert_eq!(input, PathBuf::from("app.hgr"));
                assert_eq!(parts, 96);
                assert_eq!(algorithm, Algorithm::MultilevelBaseline);
                assert_eq!(machine, MachinePreset::Cloud);
                assert!((imbalance - 1.05).abs() < 1e-12);
                assert_eq!(connectivity, Connectivity::Csr);
                assert_eq!(threads, Some(3));
                assert_eq!(parallel_mode, ParallelMode::Bsp);
                assert_eq!(seed, 7);
                assert_eq!(output, Some(PathBuf::from("out.txt")));
                assert!(json);
                assert_eq!(json_out, Some(PathBuf::from("r.json")));
                assert_eq!(metrics_out, Some(PathBuf::from("m.json")));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn every_facade_algorithm_is_reachable_from_the_command_line() {
        for algorithm in Algorithm::all() {
            let line = format!("partition app.hgr --parts 8 -a {}", algorithm.name());
            match Cli::parse(argv(&line)).unwrap().command {
                Command::Partition { algorithm: got, .. } => assert_eq!(got, algorithm),
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn connectivity_defaults_to_auto_and_rejects_unknown_values() {
        let cli = Cli::parse(argv("partition app.hgr --parts 8")).unwrap();
        match cli.command {
            Command::Partition {
                connectivity,
                algorithm,
                json,
                ..
            } => {
                assert_eq!(connectivity, Connectivity::Auto);
                assert_eq!(algorithm, Algorithm::HyperPrawAware);
                assert!(!json);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = Cli::parse(argv("partition app.hgr --parts 8 -c adj")).unwrap();
        match cli.command {
            Command::Partition { connectivity, .. } => {
                assert_eq!(connectivity, Connectivity::Adjacency);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            Cli::parse(argv("partition app.hgr --parts 8 --connectivity hashmap")).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn parses_parallel_mode_on_partition_and_lowmem() {
        match Cli::parse(argv(
            "partition app.hgr --parts 8 -a parallel-basic --threads 4 --parallel-mode steal",
        ))
        .unwrap()
        .command
        {
            Command::Partition { parallel_mode, .. } => {
                assert_eq!(parallel_mode, ParallelMode::WorkStealing);
            }
            other => panic!("wrong command {other:?}"),
        }
        match Cli::parse(argv(
            "lowmem big.hgr --parts 8 --threads 0 --parallel-mode steal",
        ))
        .unwrap()
        .command
        {
            Command::LowMem {
                parallel_mode,
                threads,
                ..
            } => {
                assert_eq!(parallel_mode, ParallelMode::WorkStealing);
                assert_eq!(threads, 0, "0 reaches the facade's auto-detect");
            }
            other => panic!("wrong command {other:?}"),
        }
        match Cli::parse(argv("lowmem big.hgr --parts 8"))
            .unwrap()
            .command
        {
            Command::LowMem { parallel_mode, .. } => {
                assert_eq!(parallel_mode, ParallelMode::Bsp);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            Cli::parse(argv("partition app.hgr --parts 8 --parallel-mode chaotic")).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn partition_requires_parts() {
        let err = Cli::parse(argv("partition app.hgr")).unwrap_err();
        assert!(matches!(err, ParseError::MissingValue(_)));
    }

    #[test]
    fn parses_lowmem_with_defaults_and_overrides() {
        let cli = Cli::parse(argv("lowmem big.hgr --parts 32")).unwrap();
        match cli.command {
            Command::LowMem {
                parts,
                budget_mib,
                exact,
                restream,
                passes,
                rebuild_sketches,
                threads,
                json,
                ..
            } => {
                assert_eq!(parts, 32);
                assert_eq!(budget_mib, 64);
                assert!(!exact);
                assert_eq!(restream, None);
                assert_eq!(passes, 1);
                assert!(!rebuild_sketches);
                assert_eq!(threads, 1);
                assert!(!json);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = Cli::parse(argv(
            "lowmem big.hgr -p 8 -b 16 --exact --restream 500 --passes 3 --rebuild-sketches \
             --threads 4 -m flat --seed 3 -o out.txt --json",
        ))
        .unwrap();
        match cli.command {
            Command::LowMem {
                budget_mib,
                exact,
                restream,
                passes,
                rebuild_sketches,
                threads,
                machine,
                seed,
                output,
                json,
                ..
            } => {
                assert_eq!(budget_mib, 16);
                assert!(exact);
                assert_eq!(restream, Some(500));
                assert_eq!(passes, 3);
                assert!(rebuild_sketches);
                assert_eq!(threads, 4);
                assert_eq!(machine, MachinePreset::Flat);
                assert_eq!(seed, 3);
                assert_eq!(output, Some(PathBuf::from("out.txt")));
                assert!(json);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            Cli::parse(argv("lowmem big.hgr")).unwrap_err(),
            ParseError::MissingValue(_)
        ));
    }

    #[test]
    fn parses_lowmem_format_and_prefetch_flags() {
        match Cli::parse(argv("lowmem big.hpz --parts 8"))
            .unwrap()
            .command
        {
            Command::LowMem {
                format,
                no_prefetch,
                ..
            } => {
                assert_eq!(format, StreamFormat::Auto);
                assert!(!no_prefetch);
            }
            other => panic!("wrong command {other:?}"),
        }
        match Cli::parse(argv(
            "lowmem big.hgr -p 8 --format compressed --no-prefetch",
        ))
        .unwrap()
        .command
        {
            Command::LowMem {
                format,
                no_prefetch,
                ..
            } => {
                assert_eq!(format, StreamFormat::Compressed);
                assert!(no_prefetch);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(matches!(
            Cli::parse(argv("lowmem big.hgr -p 8 --format zip")).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn parses_convert_and_generate() {
        assert_eq!(
            Cli::parse(argv("convert in.hgr out.hpz")).unwrap().command,
            Command::Convert {
                input: PathBuf::from("in.hgr"),
                output: PathBuf::from("out.hpz"),
                block_bytes: 64 * 1024,
            }
        );
        assert_eq!(
            Cli::parse(argv("convert in.hgr out.hpz --block-bytes 4096"))
                .unwrap()
                .command,
            Command::Convert {
                input: PathBuf::from("in.hgr"),
                output: PathBuf::from("out.hpz"),
                block_bytes: 4096,
            }
        );
        assert!(matches!(
            Cli::parse(argv("convert in.hgr")).unwrap_err(),
            ParseError::MissingArgument(_)
        ));
        assert_eq!(
            Cli::parse(argv(
                "generate mesh.hgr --vertices 500 --cardinality 8 --seed 3"
            ))
            .unwrap()
            .command,
            Command::Generate {
                output: PathBuf::from("mesh.hgr"),
                vertices: 500,
                cardinality: 8,
                seed: 3,
            }
        );
    }

    #[test]
    fn parses_profile_and_benchmark() {
        let cli = Cli::parse(argv("profile --machine flat --procs 32")).unwrap();
        assert!(matches!(
            cli.command,
            Command::Profile {
                machine: MachinePreset::Flat,
                procs: 32,
                output: None
            }
        ));
        let cli = Cli::parse(argv("benchmark a.hgr parts.txt --bytes 64 --supersteps 5")).unwrap();
        match cli.command {
            Command::Benchmark {
                message_bytes,
                supersteps,
                ..
            } => {
                assert_eq!(message_bytes, 64);
                assert_eq!(supersteps, 5);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_serve() {
        let cli = Cli::parse(argv("serve")).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                bind: "127.0.0.1:7700".into(),
                stdio: false,
                state_dir: None,
                max_line_bytes: 16 * 1024 * 1024,
                read_timeout_secs: 30,
                snapshot_every: 64,
                metrics_addr: None,
            }
        );
        let cli = Cli::parse(argv(
            "serve --bind 0.0.0.0:9000 --stdio --state-dir /tmp/hp-state \
             --max-line-bytes 1024 --read-timeout-secs 5 --snapshot-every 8 \
             --metrics-addr 127.0.0.1:9100",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                bind: "0.0.0.0:9000".into(),
                stdio: true,
                state_dir: Some(PathBuf::from("/tmp/hp-state")),
                max_line_bytes: 1024,
                read_timeout_secs: 5,
                snapshot_every: 8,
                metrics_addr: Some("127.0.0.1:9100".into()),
            }
        );
        assert!(matches!(
            Cli::parse(argv("serve --port 1")).unwrap_err(),
            ParseError::UnknownOption(_)
        ));
        assert!(matches!(
            Cli::parse(argv("serve --max-line-bytes lots")).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn rejects_unknown_commands_options_and_values() {
        assert!(matches!(
            Cli::parse(argv("frobnicate x")).unwrap_err(),
            ParseError::UnknownCommand(_)
        ));
        assert!(matches!(
            Cli::parse(argv("partition a.hgr --parts 4 --bogus 1")).unwrap_err(),
            ParseError::UnknownOption(_)
        ));
        assert!(matches!(
            Cli::parse(argv("partition a.hgr --parts four")).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
        assert!(matches!(
            Cli::parse(argv("partition a.hgr --parts 4 -a quantum")).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
        assert_eq!(
            Cli::parse(std::iter::empty()).unwrap_err(),
            ParseError::MissingCommand
        );
    }

    #[test]
    fn help_flag_short_circuits() {
        assert_eq!(
            Cli::parse(argv("partition --help")).unwrap_err(),
            ParseError::HelpRequested
        );
        assert!(usage().contains("USAGE"));
        assert!(usage().contains("--json"));
    }
}
