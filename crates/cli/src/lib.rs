//! Library backing the `hyperpraw` command-line tool.
//!
//! The CLI wraps the workspace crates so a hypergraph file can be
//! partitioned, inspected and benchmarked without writing Rust:
//!
//! ```text
//! hyperpraw stats      matrix.mtx
//! hyperpraw partition  app.hgr --parts 96 --algorithm aware --machine archer -o assignment.txt
//! hyperpraw profile    --machine archer --procs 144 -o bandwidth.csv
//! hyperpraw benchmark  app.hgr assignment.txt --machine archer
//! hyperpraw serve      --stdio
//! ```
//!
//! Argument parsing is hand-rolled (no external dependencies) and lives in
//! [`args`]; the subcommand implementations live in [`commands`]. Every
//! partitioning invocation dispatches through the facade's unified
//! [`hyperpraw::api::PartitionJob`] — the CLI carries no per-driver
//! wiring of its own.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod serve;

pub use args::{Cli, Command, MachinePreset, ParseError};
pub use hyperpraw::api::Algorithm;

/// Entry point shared by the binary and the integration tests: parses the
/// arguments and runs the selected subcommand, returning a process exit
/// code.
pub fn run<I: IntoIterator<Item = String>>(argv: I) -> i32 {
    match args::Cli::parse(argv) {
        Ok(cli) => match commands::execute(&cli) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(ParseError::HelpRequested) => {
            println!("{}", args::usage());
            0
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::usage());
            2
        }
    }
}
