//! End-to-end gate for the telemetry surface of `hyperpraw serve`: spawns
//! the real binary in `--stdio` mode, issues `partition` / `update` /
//! `lookup` / `metrics` / `report`, and asserts the metrics payload
//! parses as JSON with nonzero per-request-type counters and p50/p95/p99
//! latency percentiles — the exchange CI replays verbatim.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use hyperpraw::json::{parse, JsonValue};

fn run_stdio(requests: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hyperpraw"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hyperpraw serve --stdio");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    stdin.write_all(requests.as_bytes()).unwrap();
    stdin.flush().unwrap();
    drop(stdin);
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status}");
    lines
}

fn counter(metrics: &JsonValue, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("missing counter {name} in {metrics:?}"))
}

#[test]
fn metrics_request_reports_per_op_counters_and_percentiles() {
    let requests = concat!(
        "{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, ",
        "\"edges\": [[0,1,2],[2,3],[3,4,5],[5,0],[1,4]], \"vertices\": 6}\n",
        "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}, ",
        "{\"op\": \"add_edge\", \"pins\": [6, 2, 3]}]}\n",
        "{\"op\": \"lookup\", \"vertex\": 6}\n",
        "{\"op\": \"metrics\"}\n",
        "{\"op\": \"report\"}\n",
        "{\"op\": \"shutdown\"}\n",
    );
    let lines = run_stdio(requests);
    assert_eq!(lines.len(), 6, "one response per request: {lines:#?}");

    // The metrics response embeds the registry snapshot under "metrics".
    let response = parse(&lines[3]).expect("metrics response parses as JSON");
    assert_eq!(response.get("ok").and_then(|v| v.as_bool()), Some(true));
    let metrics = response.get("metrics").expect("metrics payload");

    // Every request type answered so far has a nonzero counter; the
    // metrics request itself is still in flight when the snapshot is
    // taken, so only the three preceding ops are asserted.
    for op in ["partition", "update", "lookup"] {
        assert_eq!(
            counter(metrics, &format!("serve.requests.{op}")),
            1,
            "exactly one {op} request before the snapshot"
        );
        let latency = metrics
            .get("histograms")
            .and_then(|h| h.get(&format!("serve.request.{op}_us")))
            .unwrap_or_else(|| panic!("missing latency histogram for {op}"));
        assert_eq!(latency.get("count").and_then(|v| v.as_u64()), Some(1));
        for q in ["p50", "p95", "p99"] {
            let v = latency
                .get(q)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("missing {q} for {op}"));
            assert!(v >= 0.0, "{op} {q} = {v}");
        }
    }

    // Satellite: the report op carries uptime and the same counters.
    let report = parse(&lines[4]).expect("report response parses as JSON");
    let uptime = report
        .get("uptime_secs")
        .and_then(|v| v.as_f64())
        .expect("report carries uptime_secs");
    assert!(uptime >= 0.0);
    let requests_by_type = report.get("requests").expect("per-type request counters");
    assert_eq!(
        requests_by_type.get("metrics").and_then(|v| v.as_u64()),
        Some(1),
        "the metrics request has been counted by report time"
    );
    assert_eq!(
        requests_by_type.get("partition").and_then(|v| v.as_u64()),
        Some(1)
    );
}

#[test]
fn partition_report_json_embeds_live_telemetry_via_metrics_out() {
    // The CLI side of the same surface: --metrics-out dumps the run's
    // registry, and the report JSON carries the telemetry section.
    let dir = std::env::temp_dir();
    let input = dir.join(format!("hyperpraw_metrics_{}.hgr", std::process::id()));
    let metrics_out = dir.join(format!("hyperpraw_metrics_{}.json", std::process::id()));
    let report_out = dir.join(format!(
        "hyperpraw_metrics_report_{}.json",
        std::process::id()
    ));
    std::fs::write(&input, "4 6\n1 2 3\n3 4 5\n5 6 1\n2 4 6\n").unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_hyperpraw"))
        .args([
            "partition",
            input.to_str().unwrap(),
            "--parts",
            "2",
            "--algorithm",
            "basic",
            "--seed",
            "7",
            "--json-out",
            report_out.to_str().unwrap(),
            "--metrics-out",
            metrics_out.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .status()
        .expect("spawn hyperpraw partition");
    assert!(status.success());

    let metrics = parse(&std::fs::read_to_string(&metrics_out).unwrap())
        .expect("--metrics-out writes valid JSON");
    let scored = metrics
        .get("counters")
        .and_then(|c| c.get("engine.vertices_scored"))
        .and_then(|v| v.as_u64())
        .expect("engine.vertices_scored counter");
    assert!(scored > 0, "the engine scored vertices: {scored}");

    let report = parse(&std::fs::read_to_string(&report_out).unwrap())
        .expect("--json-out writes valid JSON");
    let telemetry = report.get("telemetry").expect("telemetry section");
    assert!(
        telemetry.get("partition_secs").is_some(),
        "telemetry subsumes the phase timings"
    );
    assert!(
        telemetry
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some(),
        "live registry snapshot embedded in the report"
    );

    for p in [&input, &metrics_out, &report_out] {
        std::fs::remove_file(p).ok();
    }
}
