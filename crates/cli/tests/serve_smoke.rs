//! End-to-end smoke test for `hyperpraw serve --stdio`: spawns the real
//! binary and drives one partition / update / lookup / report / shutdown
//! round-trip over its pipes — the same exchange CI replays.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

#[test]
fn serve_stdio_round_trip() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hyperpraw"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hyperpraw serve --stdio");

    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let requests = concat!(
        "{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, ",
        "\"edges\": [[0,1,2],[2,3],[3,4,5],[5,0],[1,4]], \"vertices\": 6}\n",
        "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}, ",
        "{\"op\": \"add_edge\", \"pins\": [6, 2, 3]}]}\n",
        "{\"op\": \"lookup\", \"vertex\": 6}\n",
        "{\"op\": \"report\"}\n",
        "{\"op\": \"shutdown\"}\n",
    );
    stdin.write_all(requests.as_bytes()).unwrap();
    stdin.flush().unwrap();
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 5, "one response per request: {lines:#?}");
    assert!(
        lines[0].contains("\"ok\": true")
            && lines[0].contains("\"algorithm\": \"hyperpraw-basic\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"update\"") && lines[1].contains("\"vertices_moved\""),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"vertex\": 6") && lines[2].contains("\"part\": "),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].contains("\"quality\": \"evaluated\""),
        "{}",
        lines[3]
    );
    assert_eq!(lines[4], "{\"ok\": true, \"bye\": true}");

    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status}");
}

/// Malformed request lines — broken JSON and raw non-UTF-8 bytes — must
/// answer a structured `{"error": {"message", "offset"}}` object and leave
/// the session serving; only `shutdown`/EOF may end it.
#[test]
fn serve_stdio_survives_malformed_lines_with_structured_errors() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hyperpraw"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hyperpraw serve --stdio");

    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut requests: Vec<u8> = Vec::new();
    requests.extend_from_slice(b"{\"op\": \"partition\" \"parts\": 2}\n"); // missing comma
    requests.extend_from_slice(b"\xc3\x28 not utf-8\n"); // overlong sequence at byte 0
    requests
        .extend_from_slice(b"{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1],[1,2]]}\n");
    requests.extend_from_slice(b"{\"op\": \"lookup\", \"vertex\": 1}\n");
    requests.extend_from_slice(b"{\"op\": \"shutdown\"}\n");
    stdin.write_all(&requests).unwrap();
    stdin.flush().unwrap();
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 5, "one response per request: {lines:#?}");
    assert!(
        lines[0].contains("\"ok\": false")
            && lines[0].contains("\"message\"")
            && lines[0].contains("\"offset\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains("UTF-8") && lines[1].contains("\"offset\": 0"),
        "{}",
        lines[1]
    );
    assert!(lines[2].contains("\"ok\": true"), "{}", lines[2]);
    assert!(lines[3].contains("\"part\":"), "{}", lines[3]);
    assert_eq!(lines[4], "{\"ok\": true, \"bye\": true}");

    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status}");
}

/// A lookup above the session's id range is a structured refusal, not a
/// hedged `"part": null` — and neither it nor an oversized request line
/// (over `--max-line-bytes`) may end the session.
#[test]
fn serve_stdio_bounds_lookups_and_request_lines() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hyperpraw"))
        .args(["serve", "--stdio", "--max-line-bytes", "1024"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hyperpraw serve --stdio");

    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut requests: Vec<u8> = Vec::new();
    requests
        .extend_from_slice(b"{\"op\": \"partition\", \"parts\": 2, \"edges\": [[0,1,2],[2,3]]}\n");
    requests.extend_from_slice(b"{\"op\": \"lookup\", \"vertex\": 4}\n"); // 4 vertices: 0..4
    requests.extend_from_slice(&vec![b'{'; 2048]); // 2 KiB line under a 1 KiB cap
    requests.push(b'\n');
    requests.extend_from_slice(b"{\"op\": \"lookup\", \"vertex\": 3}\n");
    requests.extend_from_slice(b"{\"op\": \"shutdown\"}\n");
    stdin.write_all(&requests).unwrap();
    stdin.flush().unwrap();
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 5, "one response per request: {lines:#?}");
    assert!(
        lines[1].contains("\"ok\": false") && lines[1].contains("outside the session"),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"ok\": false") && lines[2].contains("exceeds 1024 bytes"),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].contains("\"part\":"),
        "session survived: {}",
        lines[3]
    );
    assert_eq!(lines[4], "{\"ok\": true, \"bye\": true}");

    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status}");
}
