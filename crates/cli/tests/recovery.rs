//! Kill-and-recover: SIGKILLs a real `hyperpraw serve --stdio --state-dir`
//! daemon mid-stream, corrupts the journal tail the way a torn write
//! would, restarts the binary against the same directory, and checks the
//! recovered session answers bit-identically to the one that died.

use std::fs;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn state_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hpraw-recovery-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(dir: &Path) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hyperpraw"))
            .args([
                "serve",
                "--stdio",
                "--state-dir",
                dir.to_str().unwrap(),
                // Keep every batch in the journal so recovery exercises
                // replay, not just the snapshot.
                "--snapshot-every",
                "1000",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn hyperpraw serve --stdio --state-dir");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    /// One request, one response — the protocol's lockstep.
    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").unwrap();
        self.stdin.flush().unwrap();
        let mut response = String::new();
        self.stdout.read_line(&mut response).unwrap();
        assert!(
            response.ends_with('\n'),
            "daemon hung up mid-request: {response:?}"
        );
        response.trim_end().to_string()
    }

    fn kill(mut self) {
        // SIGKILL: no flush, no snapshot, no destructors — the only
        // durability left is what `append` already fsynced.
        self.child.kill().unwrap();
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        assert_eq!(
            self.request("{\"op\": \"shutdown\"}"),
            "{\"ok\": true, \"bye\": true}"
        );
        let status = self.child.wait().unwrap();
        assert!(status.success(), "clean exit after shutdown: {status}");
    }
}

#[test]
fn sigkill_mid_stream_recovers_bit_identical_state() {
    let dir = state_dir("sigkill");

    // --- First life: partition, stream updates, record the truth. ---
    let mut daemon = Daemon::spawn(&dir);
    let first = daemon.request(concat!(
        "{\"op\": \"partition\", \"parts\": 3, \"seed\": 42, ",
        "\"edges\": [[0,1,2],[2,3,4],[4,5,6],[6,7,0],[1,5],[3,7]], \"vertices\": 9}",
    ));
    assert!(first.contains("\"ok\": true"), "{first}");

    let batches = [
        "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\", \"weight\": 2.0}, {\"op\": \"add_edge\", \"pins\": [9, 0, 4]}]}",
        "{\"op\": \"update\", \"updates\": [{\"op\": \"remove_vertex\", \"vertex\": 3}]}",
        "{\"op\": \"update\", \"updates\": [{\"op\": \"add_edge\", \"pins\": [1, 2, 9], \"weight\": 0.5}, {\"op\": \"remove_pin\", \"edge\": 2, \"vertex\": 5}]}",
    ];
    for batch in batches {
        let ack = daemon.request(batch);
        assert!(ack.contains("\"ok\": true"), "{ack}");
        // The ack means the batch hit the fsynced journal; it must
        // survive anything short of losing the disk.
    }

    let lookups: Vec<String> = (0..10)
        .map(|v| daemon.request(&format!("{{\"op\": \"lookup\", \"vertex\": {v}}}")))
        .collect();
    assert!(
        lookups[3].contains("\"part\": null"),
        "vertex 3 was tombstoned: {}",
        lookups[3]
    );

    daemon.kill();

    // --- Crash aftermath: a torn final write lands in the journal. ---
    let journal = dir.join("journal.log");
    let intact = fs::metadata(&journal).unwrap().len();
    let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
    f.write_all(&[0x6b, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe])
        .unwrap();
    drop(f);

    // --- Second life: recover and answer identically. ---
    let mut daemon = Daemon::spawn(&dir);
    for (v, expected) in lookups.iter().enumerate() {
        let got = daemon.request(&format!("{{\"op\": \"lookup\", \"vertex\": {v}}}"));
        assert_eq!(
            &got, expected,
            "vertex {v} answered differently after recovery"
        );
    }

    let report = daemon.request("{\"op\": \"report\"}");
    assert!(report.contains("\"recovery\""), "{report}");
    assert!(
        report.contains(&format!("\"batches_replayed\": {}", batches.len())),
        "every acked batch must be replayed: {report}"
    );
    assert!(report.contains("\"torn_tail\": true"), "{report}");
    assert!(report.contains("\"truncated_bytes\": 7"), "{report}");

    // Recovery folded the journal: the torn garbage is gone from disk.
    let folded = fs::metadata(&journal).unwrap().len();
    assert!(
        folded < intact,
        "journal was rotated clean ({folded} bytes) after folding {intact} bytes"
    );

    daemon.shutdown();

    // --- Third life: the fold itself persisted. ---
    let mut daemon = Daemon::spawn(&dir);
    for (v, expected) in lookups.iter().enumerate() {
        let got = daemon.request(&format!("{{\"op\": \"lookup\", \"vertex\": {v}}}"));
        assert_eq!(
            &got, expected,
            "vertex {v} answered differently after the fold"
        );
    }
    daemon.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

/// SIGTERM must interrupt an *idle* stdio daemon — one parked in a
/// blocking stdin read with no further input coming — and make it flush
/// its final snapshot and exit promptly. Installing handlers with
/// SA_RESTART semantics would restart the read instead, and this test
/// would hang until its deadline.
#[test]
fn sigterm_interrupts_an_idle_stdio_daemon_and_flushes_state() {
    let dir = state_dir("sigterm");

    let mut daemon = Daemon::spawn(&dir);
    let first = daemon.request(
        "{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, \"edges\": [[0,1,2],[2,3,4]]}",
    );
    assert!(first.contains("\"ok\": true"), "{first}");
    let ack = daemon.request("{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}]}");
    assert!(ack.contains("\"ok\": true"), "{ack}");
    let lookup_before = daemon.request("{\"op\": \"lookup\", \"vertex\": 2}");

    // The daemon is now idle in a blocking stdin read; stdin stays open
    // and silent, so only the signal can wake it.
    let pid = daemon.child.id().to_string();
    let sent = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(sent.success(), "kill -TERM {pid}");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let exit = loop {
        if let Some(status) = daemon.child.try_wait().unwrap() {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon ignored SIGTERM while idle (blocking read restarted?)"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    assert!(exit.success(), "clean exit after SIGTERM: {exit}");

    // The shutdown path folded the journal into a final snapshot: the
    // next life replays nothing yet answers identically.
    let mut daemon = Daemon::spawn(&dir);
    let got = daemon.request("{\"op\": \"lookup\", \"vertex\": 2}");
    assert_eq!(got, lookup_before, "assignment must survive the SIGTERM");
    let report = daemon.request("{\"op\": \"report\"}");
    assert!(
        report.contains("\"batches_replayed\": 0"),
        "the final snapshot already folded the journal: {report}"
    );
    daemon.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

/// A corrupt byte *inside* an already-acked record stops replay at the
/// damage — the prefix before it recovers, nothing after it is applied.
#[test]
fn corrupt_journal_byte_truncates_never_replays_garbage() {
    let dir = state_dir("flip");

    let mut daemon = Daemon::spawn(&dir);
    let first = daemon.request(
        "{\"op\": \"partition\", \"parts\": 2, \"seed\": 7, \"edges\": [[0,1,2],[2,3],[3,4,0]]}",
    );
    assert!(first.contains("\"ok\": true"), "{first}");
    let ack = daemon.request(
        "{\"op\": \"update\", \"updates\": [{\"op\": \"add_vertex\"}, {\"op\": \"add_edge\", \"pins\": [5, 1]}]}",
    );
    assert!(ack.contains("\"ok\": true"), "{ack}");
    let grown = daemon.request("{\"op\": \"lookup\", \"vertex\": 5}");
    assert!(grown.contains("\"ok\": true"), "{grown}");
    daemon.kill();

    // Flip one bit inside the record region (past the 16-byte header):
    // the checksum must catch it and drop the whole record.
    let journal = dir.join("journal.log");
    let mut bytes = fs::read(&journal).unwrap();
    let target = bytes.len() - 3;
    bytes[target] ^= 0x40;
    fs::write(&journal, &bytes).unwrap();

    let mut daemon = Daemon::spawn(&dir);
    let report = daemon.request("{\"op\": \"report\"}");
    assert!(
        report.contains("\"batches_replayed\": 0") && report.contains("\"torn_tail\": true"),
        "the damaged batch must not be replayed: {report}"
    );
    // The snapshot-time state (before any update) answers for itself...
    for v in 0..5 {
        let got = daemon.request(&format!("{{\"op\": \"lookup\", \"vertex\": {v}}}"));
        assert!(got.contains("\"ok\": true"), "vertex {v}: {got}");
    }
    // ...while the un-replayed vertex 5 does not exist in it.
    let gone = daemon.request("{\"op\": \"lookup\", \"vertex\": 5}");
    assert!(
        gone.contains("\"ok\": false") && gone.contains("outside the session"),
        "{gone}"
    );
    daemon.shutdown();

    let _ = fs::remove_dir_all(&dir);
}
