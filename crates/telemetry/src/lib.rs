//! Zero-dependency metrics and tracing for the HyperPRAW workspace.
//!
//! Production partitioners are judged on wall-clock, so the reproduction
//! needs to observe itself without paying for the observation. This crate
//! provides the whole observability core with nothing but `std`:
//!
//! - [`Counter`] / [`Gauge`] — relaxed-ordering atomics behind cheap
//!   clonable handles, safe to bump from any worker thread.
//! - [`Histogram`] — a fixed-footprint log-linear value histogram (in the
//!   spirit of HdrHistogram) with [`HistogramSnapshot`]s that merge across
//!   threads or processes and answer p50/p95/p99 queries.
//! - [`Span`] — a drop-based timer recording elapsed microseconds into a
//!   histogram; it never calls [`std::time::Instant::now`] when disabled.
//! - [`Registry`] — the `Arc`-shared handle everything hangs off. There are
//!   no globals: components receive a registry (or don't) explicitly.
//!
//! # Disabled mode is the default and costs nothing
//!
//! [`Registry::disabled()`] produces a registry whose metric handles hold
//! no allocation and whose operations compile down to a branch on a `None`.
//! Instrumented hot paths stay hot: the `telemetry_overhead` bench in
//! `crates/bench` pins the live-registry engine within a few percent of the
//! disabled one.
//!
//! # Exposition
//!
//! [`Registry::render_prometheus`] emits the Prometheus text format
//! (counters, gauges, and histograms as summaries with `quantile` labels);
//! [`Registry::render_json`] emits a stable JSON document. Structured
//! consumers (the facade's `PartitionReport`, the serve daemon's `metrics`
//! request) walk a [`RegistrySnapshot`] instead and apply their own writers.
//!
//! # Naming convention
//!
//! Metric names are lowercase dot-separated paths (`engine.pass_time_us`,
//! `serve.request.partition_us`); durations are recorded in microseconds
//! with an `_us` suffix. Dots are sanitised to underscores for Prometheus.

mod export;
mod histogram;

pub use histogram::{bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use histogram::HistogramCore;

/// A monotonically increasing `u64` metric.
///
/// Handles are cheap to clone and share one atomic cell per registered
/// name. A counter obtained from a disabled registry (or built with
/// [`Counter::noop`]) ignores every update.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that records nothing.
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Whether updates are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A signed instantaneous value (queue depths, occupancy, error state).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A gauge that records nothing.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Whether updates are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A drop-based timer that records elapsed **microseconds** into a
/// [`Histogram`].
///
/// Obtained from [`Histogram::span`]. When the histogram is disabled the
/// span holds no start time and drop is free — no clock read on either end.
#[derive(Debug)]
pub struct Span {
    pub(crate) hist: Histogram,
    pub(crate) start: Option<Instant>,
}

impl Span {
    /// Elapsed microseconds so far, if timing is live.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_micros() as u64)
    }

    /// Record now instead of at scope end.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// The shared handle all metrics hang off.
///
/// Clones share storage. Registration is idempotent: asking twice for the
/// same name returns handles over the same cell, so independent components
/// may bind the same metric without coordination.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::disabled()
    }
}

impl Registry {
    /// A live registry that records everything bound to it.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The no-op registry: every handle it hands out ignores updates and
    /// no allocation or clock read happens on any instrumented path.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or re-fetch) a counter under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .expect("telemetry counter map poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        });
        Counter { cell }
    }

    /// Register (or re-fetch) a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .expect("telemetry gauge map poisoned")
                    .entry(name.to_string())
                    .or_default(),
            )
        });
        Gauge { cell }
    }

    /// Register (or re-fetch) a histogram under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let core = self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .expect("telemetry histogram map poisoned")
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        });
        Histogram::from_core(core)
    }

    /// Current value of a registered counter, if any.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let map = inner
            .counters
            .lock()
            .expect("telemetry counter map poisoned");
        map.get(name).map(|cell| cell.load(Ordering::Relaxed))
    }

    /// Current value of a registered gauge, if any.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let inner = self.inner.as_ref()?;
        let map = inner.gauges.lock().expect("telemetry gauge map poisoned");
        map.get(name).map(|cell| cell.load(Ordering::Relaxed))
    }

    /// Snapshot of a registered histogram, if any.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = self.inner.as_ref()?;
        let map = inner
            .histograms
            .lock()
            .expect("telemetry histogram map poisoned");
        map.get(name).map(|core| core.snapshot())
    }

    /// Point-in-time copy of every registered metric, sorted by name.
    ///
    /// Concurrent writers may land between individual reads; each metric's
    /// own snapshot is internally consistent.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        let Some(inner) = self.inner.as_ref() else {
            return snap;
        };
        {
            let map = inner
                .counters
                .lock()
                .expect("telemetry counter map poisoned");
            for (name, cell) in map.iter() {
                snap.counters
                    .push((name.clone(), cell.load(Ordering::Relaxed)));
            }
        }
        {
            let map = inner.gauges.lock().expect("telemetry gauge map poisoned");
            for (name, cell) in map.iter() {
                snap.gauges
                    .push((name.clone(), cell.load(Ordering::Relaxed)));
            }
        }
        {
            let map = inner
                .histograms
                .lock()
                .expect("telemetry histogram map poisoned");
            for (name, core) in map.iter() {
                snap.histograms.push((name.clone(), core.snapshot()));
            }
        }
        snap
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        export::prometheus(&self.snapshot())
    }

    /// Render every metric as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        export::json(&self.snapshot())
    }
}

/// A point-in-time copy of a registry's contents, for structured consumers
/// that apply their own serialisation.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// True when no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        assert!(!c.is_enabled());
        c.add(10);
        g.set(5);
        h.record(123);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(reg.snapshot().is_empty());
        assert_eq!(reg.counter_value("x"), None);
    }

    #[test]
    fn handles_with_the_same_name_share_a_cell() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("requests"), Some(3));

        let g1 = reg.gauge("depth");
        let g2 = reg.gauge("depth");
        g1.add(4);
        g2.dec();
        assert_eq!(g1.get(), 3);

        let h1 = reg.histogram("lat");
        let h2 = reg.histogram("lat");
        h1.record(10);
        h2.record(20);
        assert_eq!(reg.histogram_snapshot("lat").unwrap().count, 2);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("g").set(-7);
        reg.histogram("h").record(99);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("g".to_string(), -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn spans_record_microseconds_only_when_enabled() {
        let reg = Registry::new();
        let h = reg.histogram("span_us");
        {
            let _span = h.span();
        }
        assert_eq!(h.snapshot().count, 1);

        let off = Registry::disabled().histogram("span_us");
        let span = off.span();
        assert_eq!(span.elapsed_us(), None);
        drop(span);
        assert_eq!(off.snapshot().count, 0);
    }

    #[test]
    fn finish_records_once() {
        let reg = Registry::new();
        let h = reg.histogram("once");
        let span = h.span();
        span.finish();
        assert_eq!(h.snapshot().count, 1);
    }
}
