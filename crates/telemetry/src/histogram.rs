//! A fixed-footprint log-linear histogram over `u64` values.
//!
//! The bucket layout follows the HdrHistogram idea: values below 32 get an
//! exact bucket each; above that, every power-of-two range is split into 32
//! linear sub-buckets, bounding relative quantile error at ~3% while keeping
//! the whole structure a flat array of [`NUM_BUCKETS`] atomics (~15 KiB).
//! Recording is one relaxed `fetch_add` per tracked statistic and never
//! allocates, so histograms are safe to share across worker threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::Span;

/// log2 of the linear sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: the exact range below
/// `SUB` plus `SUB` sub-buckets per exponent in `SUB_BITS..=63`.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Index of the bucket that holds `v`.
///
/// Exposed so tests can assert that an approximate quantile lands in the
/// same bucket as the exact one.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        ((e - SUB_BITS + 1) as usize) * SUB + ((v >> (e - SUB_BITS)) as usize & (SUB - 1))
    }
}

/// Largest value stored in bucket `i` (the reported representative: it is
/// always inside the bucket, so re-bucketing a reported quantile is exact).
fn bucket_bound(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let e = (i / SUB) as u32 + SUB_BITS - 1;
        let sub = (i % SUB) as u64;
        let width = 1u64 << (e - SUB_BITS);
        (1u64 << e) + sub * width + (width - 1)
    }
}

pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = if count == 0 {
            Vec::new()
        } else {
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        };
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A log-scaled value histogram handle; see the module docs for layout.
///
/// Clones share the underlying buckets. A handle from a disabled
/// [`Registry`](crate::Registry) records nothing and holds no allocation.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Histogram {
    /// A histogram that records nothing.
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    pub(crate) fn from_core(core: Option<Arc<HistogramCore>>) -> Self {
        Histogram { core }
    }

    /// Whether recorded values go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.record(v);
        }
    }

    /// Record a duration as microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.core.is_some() {
            self.record(d.as_micros() as u64);
        }
    }

    /// Start a [`Span`] that records elapsed microseconds here on drop.
    /// No clock is read when the histogram is disabled.
    #[inline]
    pub fn span(&self) -> Span {
        Span {
            hist: self.clone(),
            start: if self.core.is_some() {
                Some(std::time::Instant::now())
            } else {
                None
            },
        }
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |core| core.snapshot())
    }
}

/// An owned, mergeable copy of a histogram's state.
///
/// Snapshots from different histograms (different threads, processes, or
/// serve clients) merge losslessly because every histogram shares the same
/// fixed bucket layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the representative of the
    /// bucket containing the `ceil(q * count)`-th smallest observation.
    /// Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_self_consistent() {
        // Every bucket's representative maps back to that bucket, and
        // bucket indexes are monotone in the value.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bucket {i}");
        }
        let mut prev = 0;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(i < NUM_BUCKETS);
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let core = HistogramCore::new();
        for v in 0..32u64 {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 32);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 31);
        assert_eq!(snap.quantile(0.5), 15);
        assert_eq!(snap.quantile(1.0), 31);
        assert_eq!(snap.quantile(0.0), 0);
    }

    #[test]
    fn quantiles_track_relative_error() {
        let core = HistogramCore::new();
        for v in 1..=10_000u64 {
            core.record(v);
        }
        let snap = core.snapshot();
        for (q, exact) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = snap.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.04, "q={q}: got {got}, exact {exact}, err {err}");
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        let all = HistogramCore::new();
        for v in [3u64, 700, 12, 999_999, 42] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 5_000_000, 8] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());

        // Merging an empty snapshot is the identity in both directions.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&merged);
        assert_eq!(empty, all.snapshot());
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let core = HistogramCore::new();
        core.record(1_000_003);
        let snap = core.snapshot();
        assert_eq!(snap.quantile(0.99), 1_000_003);
        assert_eq!(snap.quantile(0.01), 1_000_003);
    }
}
