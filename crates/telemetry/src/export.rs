//! Text exposition of a [`RegistrySnapshot`]: Prometheus format and JSON.
//!
//! Both writers are hand-rolled (this crate has no dependencies) and emit
//! metrics in name order, so output is stable across runs.

use crate::{HistogramSnapshot, RegistrySnapshot};

/// Quantiles reported for every histogram, everywhere:
/// `(quantile, Prometheus label, JSON key)`.
pub(crate) const QUANTILES: [(f64, &str, &str); 3] = [
    (0.5, "0.5", "p50"),
    (0.95, "0.95", "p95"),
    (0.99, "0.99", "p99"),
];

/// Map a dot-separated metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Render the snapshot in the Prometheus text exposition format.
/// Histograms are exposed as summaries with `quantile` labels.
pub(crate) fn prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, hist) in &snap.histograms {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, label, _) in QUANTILES {
            out.push_str(&format!(
                "{name}{{quantile=\"{label}\"}} {}\n",
                hist.quantile(q)
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", hist.sum));
        out.push_str(&format!("{name}_count {}\n", hist.count));
    }
    out
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_hist(out: &mut String, hist: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}",
        hist.count,
        hist.sum,
        hist.min,
        hist.max,
        hist.mean()
    ));
    for (q, _, key) in QUANTILES {
        out.push_str(&format!(", \"{key}\": {}", hist.quantile(q)));
    }
    out.push('}');
}

/// Render the snapshot as
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` where each
/// histogram carries `count`/`sum`/`min`/`max`/`mean` and `p50`/`p95`/`p99`.
pub(crate) fn json(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_str(&mut out, name);
        out.push_str(&format!(": {value}"));
    }
    out.push_str("}, \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_str(&mut out, name);
        out.push_str(&format!(": {value}"));
    }
    out.push_str("}, \"histograms\": {");
    for (i, (name, hist)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_str(&mut out, name);
        out.push_str(": ");
        json_hist(&mut out, hist);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_output_is_sanitised_and_typed() {
        let reg = Registry::new();
        reg.counter("serve.requests.partition").add(7);
        reg.gauge("serve.active_connections").set(2);
        let h = reg.histogram("serve.request.partition_us");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE serve_requests_partition counter"));
        assert!(text.contains("serve_requests_partition 7"));
        assert!(text.contains("# TYPE serve_active_connections gauge"));
        assert!(text.contains("serve_active_connections 2"));
        assert!(text.contains("# TYPE serve_request_partition_us summary"));
        assert!(text.contains("serve_request_partition_us{quantile=\"0.5\"}"));
        assert!(text.contains("serve_request_partition_us_count 3"));
        for line in text.lines() {
            let metric = line.strip_prefix("# TYPE ").unwrap_or(line);
            let name = metric.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unsanitised metric name: {line}");
        }
    }

    #[test]
    fn json_output_parses_shapewise() {
        let reg = Registry::new();
        reg.counter("a.b").inc();
        reg.gauge("g").set(-3);
        reg.histogram("h_us").record(1234);
        let text = reg.render_json();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"a.b\": 1"));
        assert!(text.contains("\"g\": -3"));
        assert!(text.contains("\"p50\": "));
        assert!(text.contains("\"p95\": "));
        assert!(text.contains("\"p99\": "));
        assert!(text.contains("\"count\": 1"));
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        assert_eq!(
            Registry::disabled().render_json(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}"
        );
        assert_eq!(Registry::disabled().render_prometheus(), "");
    }
}
