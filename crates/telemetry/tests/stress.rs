//! Multi-thread consistency: handles cloned across threads must lose no
//! update and histograms must agree with a single-threaded re-recording of
//! the same multiset of values.

use std::thread;

use hyperpraw_telemetry::Registry;

#[test]
fn concurrent_counters_and_histograms_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;

    let reg = Registry::new();
    let counter = reg.counter("stress.ops");
    let gauge = reg.gauge("stress.inflight");
    let hist = reg.histogram("stress.values");

    thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                gauge.inc();
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Deterministic per-thread values spanning several
                    // powers of two.
                    hist.record(((t * PER_THREAD + i) as u64) * 37 % 1_048_576);
                }
                gauge.dec();
            });
        }
    });

    assert_eq!(counter.get(), (THREADS * PER_THREAD) as u64);
    assert_eq!(gauge.get(), 0);

    // Re-record the same multiset single-threaded; snapshots must match
    // bucket for bucket.
    let oracle = Registry::new().histogram("oracle");
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            oracle.record(((t * PER_THREAD + i) as u64) * 37 % 1_048_576);
        }
    }
    assert_eq!(hist.snapshot(), oracle.snapshot());
}

#[test]
fn snapshots_taken_mid_flight_are_internally_consistent() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 2_000;

    let reg = Registry::new();
    let hist = reg.histogram("mid.values");

    thread::scope(|scope| {
        for _ in 0..THREADS {
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record(i as u64);
                }
            });
        }
        // Interleave snapshot reads with the writers; counts must never
        // exceed the final total and quantiles must stay in range.
        for _ in 0..50 {
            let snap = hist.snapshot();
            assert!(snap.count <= (THREADS * PER_THREAD) as u64);
            if snap.count > 0 {
                let p99 = snap.quantile(0.99);
                assert!(p99 < PER_THREAD as u64 + 32);
            }
        }
    });

    let end = hist.snapshot();
    assert_eq!(end.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(end.min, 0);
    assert_eq!(end.max, PER_THREAD as u64 - 1);
}
