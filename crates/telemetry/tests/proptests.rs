//! Property tests pitting the log-linear histogram against an exact
//! sorted-vector oracle, plus merge and counting laws.

use proptest::prelude::*;

use hyperpraw_telemetry::{bucket_index, HistogramSnapshot, Registry};

/// Exact quantile on a sorted slice, matching the histogram's rank rule:
/// the `ceil(q * n)`-th smallest observation.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes so both the exact (< 32) and the log-scaled ranges
    // are exercised, including the occasional huge outlier.
    prop::collection::vec((0u64..u64::MAX, 0u8..10), 1..400).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(raw, sel)| match sel {
                0..=3 => raw % 64,
                4..=8 => 64 + raw % 100_000,
                _ => raw,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_land_in_the_oracles_bucket(values in arb_values()) {
        let reg = Registry::new();
        let hist = reg.histogram("h");
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let got = snap.quantile(q);
            prop_assert_eq!(
                bucket_index(got),
                bucket_index(exact),
                "q={}: histogram {} vs oracle {}",
                q,
                got,
                exact
            );
            // The representative never leaves the recorded range.
            prop_assert!(got >= snap.min && got <= snap.max);
        }
    }

    #[test]
    fn merging_split_streams_equals_one_stream(
        values in arb_values(),
        split in 0usize..400,
    ) {
        let split = split.min(values.len());
        let reg = Registry::new();
        let left = reg.histogram("left");
        let right = reg.histogram("right");
        let whole = reg.histogram("whole");
        for &v in &values[..split] {
            left.record(v);
        }
        for &v in &values[split..] {
            right.record(v);
        }
        for &v in &values {
            whole.record(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn merge_is_commutative(a in arb_values(), b in arb_values()) {
        let reg = Registry::new();
        let ha = reg.histogram("a");
        let hb = reg.histogram("b");
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let mut ab = ha.snapshot();
        ab.merge(&hb.snapshot());
        let mut ba = hb.snapshot();
        ba.merge(&ha.snapshot());
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn empty_snapshot_is_merge_identity(values in arb_values()) {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut left = HistogramSnapshot::default();
        left.merge(&snap);
        prop_assert_eq!(&left, &snap);
        let mut right = snap.clone();
        right.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&right, &snap);
    }

    #[test]
    fn counter_sums_exactly(adds in prop::collection::vec(0u64..1_000_000, 0..100)) {
        let reg = Registry::new();
        let c = reg.counter("c");
        for &n in &adds {
            c.add(n);
        }
        prop_assert_eq!(c.get(), adds.iter().sum::<u64>());
    }
}
