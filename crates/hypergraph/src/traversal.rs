//! Neighbourhood traversal helpers used by streaming partitioners and the
//! synthetic benchmark.
//!
//! Two vertices are *neighbours* when they share at least one hyperedge.
//! Streaming partitioners need, for a vertex `v`, the multiset of partitions
//! its neighbours currently live in (`X_j(v)` in the paper); computing this
//! efficiently and without per-vertex allocation is the job of
//! [`NeighborScratch`].

use crate::{AssignmentRef, Hypergraph, VertexId};

/// Reusable scratch space for neighbourhood queries.
///
/// The scratch keeps a "visited" epoch per vertex so repeated queries do not
/// need to clear a `|V|`-sized array each time.
#[derive(Clone, Debug)]
pub struct NeighborScratch {
    epoch: u32,
    seen: Vec<u32>,
    buffer: Vec<VertexId>,
}

impl NeighborScratch {
    /// Creates scratch space for a hypergraph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            epoch: 0,
            seen: vec![0; num_vertices],
            buffer: Vec::new(),
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap-around: reset all marks.
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Collects the distinct neighbours of `v` (excluding `v` itself) into an
    /// internal buffer and returns it as a slice. The result is unordered.
    pub fn neighbors<'a>(&'a mut self, hg: &Hypergraph, v: VertexId) -> &'a [VertexId] {
        let epoch = self.next_epoch();
        self.buffer.clear();
        self.seen[v as usize] = epoch;
        for &e in hg.incident_edges(v) {
            for &u in hg.pins(e) {
                if self.seen[u as usize] != epoch {
                    self.seen[u as usize] = epoch;
                    self.buffer.push(u);
                }
            }
        }
        &self.buffer
    }

    /// Counts, for every partition `j`, the number of *distinct* neighbours of
    /// `v` currently assigned to `j` — the paper's `X_j(v)`. The counts are
    /// written into `counts` (resized/cleared to `partition.num_parts()`).
    ///
    /// Generic over [`AssignmentRef`] so the same traversal serves both a
    /// plain [`crate::Partition`] and a live atomic assignment view.
    pub fn neighbor_partition_counts<A: AssignmentRef>(
        &mut self,
        hg: &Hypergraph,
        partition: &A,
        v: VertexId,
        counts: &mut Vec<u32>,
    ) {
        counts.clear();
        counts.resize(partition.num_parts() as usize, 0);
        let epoch = self.next_epoch();
        self.seen[v as usize] = epoch;
        for &e in hg.incident_edges(v) {
            for &u in hg.pins(e) {
                if self.seen[u as usize] != epoch {
                    self.seen[u as usize] = epoch;
                    counts[partition.part_of(u) as usize] += 1;
                }
            }
        }
    }
}

/// Number of distinct neighbours of `v`, computed through the caller's
/// reusable `scratch` (no per-call allocation).
///
/// When many degrees are needed, or when a
/// [`crate::NeighborAdjacency`] already exists for the hypergraph, prefer
/// [`crate::NeighborAdjacency::distinct_degree`], which answers in O(1)
/// from the precomputed structure.
pub fn degree_in_neighbors(hg: &Hypergraph, v: VertexId, scratch: &mut NeighborScratch) -> usize {
    scratch.neighbors(hg, v).len()
}

/// Returns the connected components of the hypergraph (two vertices are
/// connected when they share a hyperedge). Component ids are dense and
/// assigned in order of the smallest vertex in each component.
pub fn connected_components(hg: &Hypergraph) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let mut component = vec![UNVISITED; hg.num_vertices()];
    let mut next = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in hg.vertices() {
        if component[start as usize] != UNVISITED {
            continue;
        }
        component[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &e in hg.incident_edges(v) {
                for &u in hg.pins(e) {
                    if component[u as usize] == UNVISITED {
                        component[u as usize] = next;
                        stack.push(u);
                    }
                }
            }
        }
        next += 1;
    }
    component
}

/// Number of connected components.
pub fn num_connected_components(hg: &Hypergraph) -> usize {
    connected_components(hg)
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, Partition};

    /// e0 = {0,1,2}, e1 = {2,3}, isolated vertex 4, e2 = {5,6}
    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(7);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([5u32, 6]);
        b.build()
    }

    #[test]
    fn neighbors_are_distinct_and_exclude_self() {
        let hg = sample();
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        let mut n: Vec<_> = scratch.neighbors(&hg, 2).to_vec();
        n.sort_unstable();
        assert_eq!(n, vec![0, 1, 3]);
        let n0: Vec<_> = scratch.neighbors(&hg, 4).to_vec();
        assert!(n0.is_empty());
    }

    #[test]
    fn repeated_queries_reuse_scratch_correctly() {
        let hg = sample();
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        for _ in 0..10 {
            let mut a: Vec<_> = scratch.neighbors(&hg, 0).to_vec();
            a.sort_unstable();
            assert_eq!(a, vec![1, 2]);
            let mut b: Vec<_> = scratch.neighbors(&hg, 3).to_vec();
            b.sort_unstable();
            assert_eq!(b, vec![2]);
        }
    }

    #[test]
    fn neighbor_partition_counts_match_manual_count() {
        let hg = sample();
        let part = Partition::from_assignment(vec![0, 1, 1, 0, 0, 1, 0], 2).unwrap();
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        let mut counts = Vec::new();
        scratch.neighbor_partition_counts(&hg, &part, 2, &mut counts);
        // Neighbours of 2 are {0,1,3}: parts {0,1,0} -> part0: 2, part1: 1.
        assert_eq!(counts, vec![2, 1]);
        // Vertex in a pair edge.
        scratch.neighbor_partition_counts(&hg, &part, 5, &mut counts);
        assert_eq!(counts, vec![1, 0]);
        // Isolated vertex has no neighbours anywhere.
        scratch.neighbor_partition_counts(&hg, &part, 4, &mut counts);
        assert_eq!(counts, vec![0, 0]);
    }

    #[test]
    fn connected_components_found() {
        let hg = sample();
        let comp = connected_components(&hg);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
        assert_ne!(comp[0], comp[5]);
        assert_eq!(comp[5], comp[6]);
        assert_eq!(num_connected_components(&hg), 3);
    }

    #[test]
    fn degree_in_neighbors_counts_distinct_vertices() {
        let hg = sample();
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        assert_eq!(degree_in_neighbors(&hg, 2, &mut scratch), 3);
        assert_eq!(degree_in_neighbors(&hg, 4, &mut scratch), 0);
    }

    #[test]
    fn empty_hypergraph_has_no_components() {
        let hg = HypergraphBuilder::new(0).build();
        assert_eq!(num_connected_components(&hg), 0);
    }
}
