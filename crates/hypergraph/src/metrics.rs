//! Cut-based partition quality metrics.
//!
//! These are the "static" quality metrics reported in the paper's Figure 4A
//! (hyperedge cut) and Figure 4B (sum of external degrees, SOED). The
//! architecture-aware *partitioning communication cost* (Figure 4C) needs a
//! communication-cost matrix and therefore lives in `hyperpraw-core`.

use crate::{HyperedgeId, Hypergraph, Partition};

/// Returns the set of distinct partitions spanned by hyperedge `e`, written
/// into `scratch` (cleared first). The slice is sorted.
fn parts_of_edge(hg: &Hypergraph, part: &Partition, e: HyperedgeId, scratch: &mut Vec<u32>) {
    scratch.clear();
    for &v in hg.pins(e) {
        scratch.push(part.part_of(v));
    }
    scratch.sort_unstable();
    scratch.dedup();
}

/// Connectivity `λ(e)` of a hyperedge: the number of distinct partitions its
/// pins are assigned to. A hyperedge fully inside one partition has `λ = 1`.
pub fn edge_connectivity(hg: &Hypergraph, part: &Partition, e: HyperedgeId) -> usize {
    let mut scratch = Vec::new();
    parts_of_edge(hg, part, e, &mut scratch);
    scratch.len()
}

/// Hyperedge cut: the number of hyperedges that span more than one partition
/// (weighted by hyperedge weight; with unit weights this is a plain count).
///
/// This is the traditional VLSI-style quality metric, reported in the
/// paper's Figure 4A.
pub fn hyperedge_cut(hg: &Hypergraph, part: &Partition) -> u64 {
    weighted_hyperedge_cut(hg, part).round() as u64
}

/// Hyperedge cut with hyperedge weights taken into account.
pub fn weighted_hyperedge_cut(hg: &Hypergraph, part: &Partition) -> f64 {
    let mut scratch = Vec::new();
    let mut cut = 0.0;
    for e in hg.hyperedges() {
        parts_of_edge(hg, part, e, &mut scratch);
        if scratch.len() > 1 {
            cut += hg.edge_weight(e);
        }
    }
    cut
}

/// Sum of external degrees (SOED): `Σ_e λ(e)` over cut hyperedges, i.e. each
/// cut hyperedge contributes the number of partitions it touches.
///
/// Equivalently (per the paper's definition) it is, over all partitions, the
/// number of hyperedges incident on the partition but not fully contained in
/// it. High SOED indicates hyperedges being scattered across many
/// partitions, hence more communication volume. Reported in Figure 4B.
pub fn soed(hg: &Hypergraph, part: &Partition) -> u64 {
    weighted_soed(hg, part).round() as u64
}

/// SOED with hyperedge weights taken into account.
pub fn weighted_soed(hg: &Hypergraph, part: &Partition) -> f64 {
    let mut scratch = Vec::new();
    let mut total = 0.0;
    for e in hg.hyperedges() {
        parts_of_edge(hg, part, e, &mut scratch);
        if scratch.len() > 1 {
            total += scratch.len() as f64 * hg.edge_weight(e);
        }
    }
    total
}

/// Connectivity-minus-one metric `Σ_e (λ(e) − 1)·w(e)`, the metric minimised
/// by Zoltan/PaToH-style partitioners; it equals the total communication
/// volume of a gather/scatter per hyperedge. Not reported in the paper's
/// figures but used as an internal objective by the multilevel baseline.
pub fn connectivity_minus_one(hg: &Hypergraph, part: &Partition) -> f64 {
    let mut scratch = Vec::new();
    let mut total = 0.0;
    for e in hg.hyperedges() {
        parts_of_edge(hg, part, e, &mut scratch);
        total += (scratch.len() as f64 - 1.0) * hg.edge_weight(e);
    }
    total
}

/// Number of vertices that have at least one neighbour (via a shared
/// hyperedge) in a different partition. These are the vertices that must
/// send or receive remote data.
pub fn boundary_vertices(hg: &Hypergraph, part: &Partition) -> usize {
    let mut boundary = vec![false; hg.num_vertices()];
    let mut scratch = Vec::new();
    for e in hg.hyperedges() {
        parts_of_edge(hg, part, e, &mut scratch);
        if scratch.len() > 1 {
            for &v in hg.pins(e) {
                boundary[v as usize] = true;
            }
        }
    }
    boundary.iter().filter(|&&b| b).count()
}

/// A bundle of the cut-based metrics for one `(hypergraph, partition)` pair,
/// convenient for the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutMetrics {
    /// Hyperedge cut (unweighted count).
    pub hyperedge_cut: u64,
    /// Sum of external degrees.
    pub soed: u64,
    /// Connectivity-minus-one (weighted).
    pub connectivity_minus_one: f64,
    /// Number of boundary vertices.
    pub boundary_vertices: usize,
    /// Workload imbalance `max W(k) / avg W(k)`.
    pub imbalance: f64,
}

/// Computes all cut-based metrics in a single pass over the hyperedges.
pub fn cut_metrics(hg: &Hypergraph, part: &Partition) -> CutMetrics {
    let mut scratch = Vec::new();
    let mut cut = 0u64;
    let mut soed_total = 0u64;
    let mut conn = 0.0f64;
    let mut boundary = vec![false; hg.num_vertices()];
    for e in hg.hyperedges() {
        parts_of_edge(hg, part, e, &mut scratch);
        let lambda = scratch.len();
        conn += (lambda as f64 - 1.0) * hg.edge_weight(e);
        if lambda > 1 {
            cut += 1;
            soed_total += lambda as u64;
            for &v in hg.pins(e) {
                boundary[v as usize] = true;
            }
        }
    }
    CutMetrics {
        hyperedge_cut: cut,
        soed: soed_total,
        connectivity_minus_one: conn,
        boundary_vertices: boundary.iter().filter(|&&b| b).count(),
        imbalance: part.imbalance(hg).unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    /// 6 vertices, 4 hyperedges:
    /// e0 = {0,1,2}, e1 = {2,3}, e2 = {3,4,5}, e3 = {0,5}
    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([3u32, 4, 5]);
        b.add_hyperedge([0u32, 5]);
        b.build()
    }

    #[test]
    fn all_in_one_partition_has_zero_cut() {
        let hg = sample();
        let p = Partition::all_in_one(6, 4);
        assert_eq!(hyperedge_cut(&hg, &p), 0);
        assert_eq!(soed(&hg, &p), 0);
        assert_eq!(connectivity_minus_one(&hg, &p), 0.0);
        assert_eq!(boundary_vertices(&hg, &p), 0);
    }

    #[test]
    fn two_way_split_counts_cut_edges() {
        let hg = sample();
        // {0,1,2} vs {3,4,5}: e1 and e3 are cut, e0 and e2 are internal.
        let p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        assert_eq!(hyperedge_cut(&hg, &p), 2);
        assert_eq!(soed(&hg, &p), 4); // each cut edge spans 2 parts
        assert_eq!(connectivity_minus_one(&hg, &p), 2.0);
        assert_eq!(boundary_vertices(&hg, &p), 4); // vertices 0,2,3,5
    }

    #[test]
    fn scattered_edge_increases_soed_more_than_cut() {
        let hg = sample();
        // Spread e0's pins over 3 partitions.
        let p = Partition::from_assignment(vec![0, 1, 2, 2, 0, 1], 3).unwrap();
        let cut = hyperedge_cut(&hg, &p);
        let soed_v = soed(&hg, &p);
        assert!(soed_v > cut, "SOED {soed_v} must exceed cut {cut}");
        assert_eq!(edge_connectivity(&hg, &p, 0), 3);
    }

    #[test]
    fn hyperedge_weights_scale_weighted_metrics() {
        let mut b = HypergraphBuilder::new(4);
        b.add_weighted_hyperedge([0u32, 1], 3.0);
        b.add_weighted_hyperedge([2u32, 3], 1.0);
        let hg = b.build();
        let p = Partition::from_assignment(vec![0, 1, 0, 0], 2).unwrap();
        assert_eq!(weighted_hyperedge_cut(&hg, &p), 3.0);
        assert_eq!(weighted_soed(&hg, &p), 6.0);
        assert_eq!(hyperedge_cut(&hg, &p), 3); // rounded weighted value
    }

    #[test]
    fn cut_metrics_bundle_matches_individual_functions() {
        let hg = sample();
        let p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let m = cut_metrics(&hg, &p);
        assert_eq!(m.hyperedge_cut, hyperedge_cut(&hg, &p));
        assert_eq!(m.soed, soed(&hg, &p));
        assert_eq!(m.connectivity_minus_one, connectivity_minus_one(&hg, &p));
        assert_eq!(m.boundary_vertices, boundary_vertices(&hg, &p));
        assert!((m.imbalance - p.imbalance(&hg).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_invariant_under_part_relabelling() {
        let hg = sample();
        let p1 = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let p2 = Partition::from_assignment(vec![2, 2, 0, 0, 1, 1], 3).unwrap();
        assert_eq!(hyperedge_cut(&hg, &p1), hyperedge_cut(&hg, &p2));
        assert_eq!(soed(&hg, &p1), soed(&hg, &p2));
        assert_eq!(
            connectivity_minus_one(&hg, &p1),
            connectivity_minus_one(&hg, &p2)
        );
    }

    #[test]
    fn soed_equals_sum_of_connectivities_over_cut_edges() {
        let hg = sample();
        let p = Partition::round_robin(6, 3);
        let manual: usize = hg
            .hyperedges()
            .map(|e| edge_connectivity(&hg, &p, e))
            .filter(|&l| l > 1)
            .sum();
        assert_eq!(soed(&hg, &p), manual as u64);
    }
}
