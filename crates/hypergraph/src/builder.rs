//! Incremental construction of [`Hypergraph`] values.

use crate::{HyperedgeId, Hypergraph, VertexId};

/// Incremental builder for [`Hypergraph`].
///
/// Vertices are implicit dense indices; the builder tracks the largest vertex
/// id mentioned so far, and [`HypergraphBuilder::ensure_vertices`] /
/// [`HypergraphBuilder::new`] can reserve a minimum vertex count up front.
/// Hyperedges are added one at a time; duplicate pins within a hyperedge are
/// removed and pins are sorted.
///
/// ```
/// use hyperpraw_hypergraph::HypergraphBuilder;
///
/// let mut b = HypergraphBuilder::new(3);
/// b.add_hyperedge([0u32, 2, 2]); // duplicate pin collapses
/// let hg = b.build();
/// assert_eq!(hg.pins(0), &[0, 2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    name: String,
    num_vertices: usize,
    edges: Vec<Vec<VertexId>>,
    edge_weights: Vec<f64>,
    vertex_weights: Vec<f64>,
    drop_small_edges: bool,
}

impl HypergraphBuilder {
    /// Creates a builder with at least `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            ..Self::default()
        }
    }

    /// Creates a builder with a preallocated hyperedge capacity.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(num_edges);
        b.edge_weights.reserve(num_edges);
        b
    }

    /// Sets the name recorded on the built hypergraph.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// When enabled, hyperedges with fewer than two (distinct) pins are
    /// dropped at [`HypergraphBuilder::build`] time. Such edges can never be
    /// cut, so partitioners usually ignore them; real datasets (e.g. SAT
    /// instances) do contain them.
    pub fn drop_small_edges(&mut self, yes: bool) -> &mut Self {
        self.drop_small_edges = yes;
        self
    }

    /// Ensures the vertex set covers ids `0..n`.
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// Number of vertices the built hypergraph will have (so far).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges added so far.
    pub fn num_hyperedges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a hyperedge with unit weight. Returns its id.
    pub fn add_hyperedge<I>(&mut self, pins: I) -> HyperedgeId
    where
        I: IntoIterator<Item = VertexId>,
    {
        self.add_weighted_hyperedge(pins, 1.0)
    }

    /// Adds a hyperedge with an explicit weight. Returns its id.
    pub fn add_weighted_hyperedge<I>(&mut self, pins: I, weight: f64) -> HyperedgeId
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut pins: Vec<VertexId> = pins.into_iter().collect();
        pins.sort_unstable();
        pins.dedup();
        if let Some(&max) = pins.last() {
            self.ensure_vertices(max as usize + 1);
        }
        let id = self.edges.len() as HyperedgeId;
        self.edges.push(pins);
        self.edge_weights.push(weight);
        id
    }

    /// Sets the weight of vertex `v` (default 1.0). Grows the vertex set if
    /// needed.
    pub fn set_vertex_weight(&mut self, v: VertexId, weight: f64) -> &mut Self {
        self.ensure_vertices(v as usize + 1);
        if self.vertex_weights.len() <= v as usize {
            self.vertex_weights.resize(v as usize + 1, 1.0);
        }
        self.vertex_weights[v as usize] = weight;
        self
    }

    /// Finalises the builder into an immutable [`Hypergraph`].
    pub fn build(self) -> Hypergraph {
        let Self {
            name,
            num_vertices,
            mut edges,
            mut edge_weights,
            mut vertex_weights,
            drop_small_edges,
        } = self;

        if drop_small_edges {
            let mut kept_weights = Vec::with_capacity(edge_weights.len());
            let mut kept_edges = Vec::with_capacity(edges.len());
            for (pins, w) in edges.into_iter().zip(edge_weights) {
                if pins.len() >= 2 {
                    kept_edges.push(pins);
                    kept_weights.push(w);
                }
            }
            edges = kept_edges;
            edge_weights = kept_weights;
        }

        vertex_weights.resize(num_vertices, 1.0);

        // Hyperedge -> pins CSR.
        let mut edge_offsets = Vec::with_capacity(edges.len() + 1);
        edge_offsets.push(0usize);
        let total_pins: usize = edges.iter().map(Vec::len).sum();
        let mut edge_pins = Vec::with_capacity(total_pins);
        for pins in &edges {
            edge_pins.extend_from_slice(pins);
            edge_offsets.push(edge_pins.len());
        }

        // Vertex -> incident hyperedges CSR (counting sort over pins).
        let mut degree = vec![0usize; num_vertices];
        for pins in &edges {
            for &v in pins {
                degree[v as usize] += 1;
            }
        }
        let mut vertex_offsets = Vec::with_capacity(num_vertices + 1);
        vertex_offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degree {
            acc += d;
            vertex_offsets.push(acc);
        }
        let mut cursor = vertex_offsets.clone();
        let mut vertex_edges = vec![0 as HyperedgeId; total_pins];
        for (e, pins) in edges.iter().enumerate() {
            for &v in pins {
                let slot = cursor[v as usize];
                vertex_edges[slot] = e as HyperedgeId;
                cursor[v as usize] += 1;
            }
        }
        // Edges were appended in increasing edge id order, so each vertex's
        // incidence list is already sorted.

        Hypergraph::from_parts(
            name,
            edge_offsets,
            edge_pins,
            vertex_offsets,
            vertex_edges,
            vertex_weights,
            edge_weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pins_are_collapsed_and_sorted() {
        let mut b = HypergraphBuilder::new(0);
        b.add_hyperedge([3u32, 1, 3, 2, 1]);
        let hg = b.build();
        assert_eq!(hg.pins(0), &[1, 2, 3]);
        assert_eq!(hg.num_vertices(), 4);
        hg.validate().unwrap();
    }

    #[test]
    fn vertices_grow_to_cover_max_pin() {
        let mut b = HypergraphBuilder::new(2);
        b.add_hyperedge([0u32, 9]);
        let hg = b.build();
        assert_eq!(hg.num_vertices(), 10);
        assert_eq!(hg.degree(5), 0);
    }

    #[test]
    fn drop_small_edges_removes_singletons_and_empties() {
        let mut b = HypergraphBuilder::new(4);
        b.drop_small_edges(true);
        b.add_hyperedge([0u32]);
        b.add_hyperedge(std::iter::empty::<u32>());
        b.add_hyperedge([1u32, 2]);
        b.add_hyperedge([2u32, 2]); // collapses to singleton, dropped
        let hg = b.build();
        assert_eq!(hg.num_hyperedges(), 1);
        assert_eq!(hg.pins(0), &[1, 2]);
    }

    #[test]
    fn weights_are_preserved() {
        let mut b = HypergraphBuilder::new(3);
        b.add_weighted_hyperedge([0u32, 1], 2.5);
        b.set_vertex_weight(2, 4.0);
        let hg = b.build();
        assert_eq!(hg.edge_weight(0), 2.5);
        assert_eq!(hg.vertex_weight(2), 4.0);
        assert_eq!(hg.vertex_weight(0), 1.0);
        assert_eq!(hg.total_vertex_weight(), 6.0);
    }

    #[test]
    fn incidence_lists_are_sorted_by_edge_id() {
        let mut b = HypergraphBuilder::new(3);
        b.add_hyperedge([2u32, 0]);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([0u32, 2]);
        let hg = b.build();
        assert_eq!(hg.incident_edges(0), &[0, 1, 2]);
        assert_eq!(hg.incident_edges(2), &[0, 2]);
    }

    #[test]
    fn with_capacity_builds_identically() {
        let mut a = HypergraphBuilder::new(3);
        let mut b = HypergraphBuilder::with_capacity(3, 10);
        for builder in [&mut a, &mut b] {
            builder.add_hyperedge([0u32, 1]);
            builder.add_hyperedge([1u32, 2]);
        }
        let (ha, hb) = (a.build(), b.build());
        assert_eq!(ha, hb);
    }
}
