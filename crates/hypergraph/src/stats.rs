//! Summary statistics of a hypergraph instance (the paper's Table 1).

use std::fmt;

use crate::Hypergraph;

/// The descriptive statistics reported for each benchmark hypergraph in the
/// paper's Table 1, plus a few extras useful for sanity-checking generated
/// instances.
#[derive(Clone, Debug, PartialEq)]
pub struct HypergraphStats {
    /// Instance name.
    pub name: String,
    /// Number of vertices `|V|`.
    pub vertices: usize,
    /// Number of hyperedges `|E|`.
    pub hyperedges: usize,
    /// Total number of pins ("Total NNZ" in Table 1).
    pub pins: usize,
    /// Average hyperedge cardinality ("Avg cardinality").
    pub avg_cardinality: f64,
    /// Maximum hyperedge cardinality.
    pub max_cardinality: usize,
    /// Ratio `|E| / |V|` ("hyperedge/vertex").
    pub edge_vertex_ratio: f64,
    /// Average vertex degree.
    pub avg_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Upper bound on the deduplicated neighbour-adjacency size
    /// (`Σ_e |e|·(|e|−1)`, the number of ordered neighbour pairs before
    /// deduplication). The ratio of this bound to the pin count is what
    /// decides whether a full [`crate::NeighborAdjacency`] stays linear in
    /// the input or needs the budgeted hub cutover.
    pub adjacency_upper_bound: usize,
}

impl HypergraphStats {
    /// Computes the statistics for a hypergraph.
    pub fn compute(hg: &Hypergraph) -> Self {
        Self {
            name: hg.name().to_string(),
            vertices: hg.num_vertices(),
            hyperedges: hg.num_hyperedges(),
            pins: hg.num_pins(),
            avg_cardinality: hg.avg_cardinality(),
            max_cardinality: hg.max_cardinality(),
            edge_vertex_ratio: if hg.num_vertices() == 0 {
                0.0
            } else {
                hg.num_hyperedges() as f64 / hg.num_vertices() as f64
            },
            avg_degree: hg.avg_degree(),
            max_degree: hg.max_degree(),
            adjacency_upper_bound: hg
                .hyperedges()
                .map(|e| {
                    let c = hg.cardinality(e);
                    c * c.saturating_sub(1)
                })
                .sum(),
        }
    }

    /// Header row matching [`HypergraphStats::csv_row`].
    pub fn csv_header() -> &'static str {
        "name,vertices,hyperedges,pins,avg_cardinality,max_cardinality,edge_vertex_ratio,avg_degree,max_degree,adjacency_upper_bound"
    }

    /// Comma-separated row, for the Table 1 harness output.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.2},{},{:.2},{:.2},{},{}",
            self.name,
            self.vertices,
            self.hyperedges,
            self.pins,
            self.avg_cardinality,
            self.max_cardinality,
            self.edge_vertex_ratio,
            self.avg_degree,
            self.max_degree,
            self.adjacency_upper_bound
        )
    }
}

impl fmt::Display for HypergraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<32} |V|={:>9} |E|={:>9} pins={:>10} avg|e|={:>8.2} |E|/|V|={:>6.2}",
            self.name,
            self.vertices,
            self.hyperedges,
            self.pins,
            self.avg_cardinality,
            self.edge_vertex_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(5);
        b.name("stats-sample");
        b.add_hyperedge([0u32, 1, 2, 3]);
        b.add_hyperedge([3u32, 4]);
        b.build()
    }

    #[test]
    fn stats_match_manual_computation() {
        let s = HypergraphStats::compute(&sample());
        assert_eq!(s.name, "stats-sample");
        assert_eq!(s.vertices, 5);
        assert_eq!(s.hyperedges, 2);
        assert_eq!(s.pins, 6);
        assert!((s.avg_cardinality - 3.0).abs() < 1e-12);
        assert_eq!(s.max_cardinality, 4);
        assert!((s.edge_vertex_ratio - 0.4).abs() < 1e-12);
        assert!((s.avg_degree - 1.2).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        // 4·3 + 2·1 ordered neighbour pairs before deduplication.
        assert_eq!(s.adjacency_upper_bound, 14);
    }

    #[test]
    fn csv_row_has_same_field_count_as_header() {
        let s = HypergraphStats::compute(&sample());
        let header_fields = HypergraphStats::csv_header().split(',').count();
        let row_fields = s.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn display_contains_name_and_sizes() {
        let s = HypergraphStats::compute(&sample());
        let out = format!("{s}");
        assert!(out.contains("stats-sample"));
        assert!(out.contains("|V|="));
    }

    #[test]
    fn empty_hypergraph_has_zero_ratio() {
        let hg = HypergraphBuilder::new(0).build();
        let s = HypergraphStats::compute(&hg);
        assert_eq!(s.edge_vertex_ratio, 0.0);
        assert_eq!(s.avg_cardinality, 0.0);
    }
}
