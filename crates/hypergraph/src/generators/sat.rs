//! SAT-instance hypergraphs in primal and dual models (the `sat14_*`
//! families).
//!
//! A CNF formula maps to a hypergraph in two standard ways:
//!
//! * **primal**: vertices are variables; every clause is a hyperedge over the
//!   variables it mentions (so `|V| = #vars`, `|E| = #clauses`, cardinality =
//!   clause length). Instances such as `sat14_10pipe_q0_k primal` have a huge
//!   number of short hyperedges.
//! * **dual**: vertices are clauses; every variable is a hyperedge over the
//!   clauses it occurs in (so `|V| = #clauses`, `|E| = #vars`, cardinality =
//!   variable occurrence count). Instances such as `sat14_itox_vc1130 dual`
//!   have comparatively few, larger hyperedges.
//!
//! The generator produces a random CNF with a power-law variable occurrence
//! profile (as in real SAT-competition instances, where a few variables occur
//! in thousands of clauses) and then applies either model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Which hypergraph model to apply to the generated CNF.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatModel {
    /// Vertices = variables, hyperedges = clauses.
    Primal,
    /// Vertices = clauses, hyperedges = variables.
    Dual,
}

/// Configuration for [`sat_hypergraph`].
#[derive(Clone, Debug)]
pub struct SatConfig {
    /// Number of boolean variables in the CNF.
    pub num_variables: usize,
    /// Number of clauses in the CNF.
    pub num_clauses: usize,
    /// Average clause length (literals per clause).
    pub avg_clause_len: f64,
    /// Skew of variable popularity: 0.0 = uniform, 1.0 = strongly power-law.
    pub popularity_skew: f64,
    /// Hypergraph model to apply.
    pub model: SatModel,
    /// RNG seed.
    pub seed: u64,
    /// Instance name recorded on the hypergraph.
    pub name: String,
}

impl SatConfig {
    /// A primal-model configuration with default skew.
    pub fn primal(num_variables: usize, num_clauses: usize, avg_clause_len: f64) -> Self {
        Self {
            num_variables,
            num_clauses,
            avg_clause_len,
            popularity_skew: 0.7,
            model: SatModel::Primal,
            seed: 0,
            name: "sat-primal".to_string(),
        }
    }

    /// A dual-model configuration with default skew.
    pub fn dual(num_variables: usize, num_clauses: usize, avg_clause_len: f64) -> Self {
        Self {
            model: SatModel::Dual,
            name: "sat-dual".to_string(),
            ..Self::primal(num_variables, num_clauses, avg_clause_len)
        }
    }
}

/// Generates the hypergraph of a random CNF under the configured model.
pub fn sat_hypergraph(cfg: &SatConfig) -> Hypergraph {
    assert!(cfg.num_variables > 1, "need at least two variables");
    assert!(cfg.num_clauses > 0, "need at least one clause");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let nv = cfg.num_variables;
    let nc = cfg.num_clauses;

    // Sample a variable with power-law popularity: skewing the uniform draw
    // towards low variable ids (the "important" variables).
    let skew = cfg.popularity_skew.clamp(0.0, 1.0);
    let sample_var = |rng: &mut StdRng| -> usize {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        // Interpolate between uniform (u) and quadratically skewed (u^3).
        let s = (1.0 - skew) * u + skew * u * u * u;
        ((s * nv as f64) as usize).min(nv - 1)
    };

    // Build clauses: each clause is a set of distinct variables.
    let min_len = 2usize;
    let max_len = ((cfg.avg_clause_len * 2.0).ceil() as usize).max(min_len + 1);
    let avg = cfg.avg_clause_len.max(min_len as f64);
    let mut clauses: Vec<Vec<u32>> = Vec::with_capacity(nc);
    for _ in 0..nc {
        // Draw clause length around the average with a simple geometric-ish
        // spread, clamped to [min_len, max_len].
        let spread: f64 = rng.gen_range(0.5..1.5);
        let len = ((avg * spread).round() as usize).clamp(min_len, max_len.min(nv));
        let mut clause: Vec<u32> = Vec::with_capacity(len);
        while clause.len() < len {
            let v = sample_var(&mut rng) as u32;
            if !clause.contains(&v) {
                clause.push(v);
            }
        }
        clauses.push(clause);
    }

    match cfg.model {
        SatModel::Primal => {
            let mut builder = HypergraphBuilder::with_capacity(nv, nc);
            builder.name(cfg.name.clone());
            for clause in &clauses {
                builder.add_hyperedge(clause.iter().map(|&v| v as VertexId));
            }
            builder.ensure_vertices(nv);
            builder.build()
        }
        SatModel::Dual => {
            // Invert: hyperedge per variable listing the clauses containing it.
            let mut occurrences: Vec<Vec<VertexId>> = vec![Vec::new(); nv];
            for (c, clause) in clauses.iter().enumerate() {
                for &v in clause {
                    occurrences[v as usize].push(c as VertexId);
                }
            }
            let mut builder = HypergraphBuilder::with_capacity(nc, nv);
            builder.name(cfg.name.clone());
            builder.drop_small_edges(false);
            for occ in occurrences.iter().filter(|o| !o.is_empty()) {
                builder.add_hyperedge(occ.iter().copied());
            }
            builder.ensure_vertices(nc);
            builder.build()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primal_model_sizes() {
        let cfg = SatConfig::primal(300, 1200, 3.0);
        let hg = sat_hypergraph(&cfg);
        assert_eq!(hg.num_vertices(), 300);
        assert_eq!(hg.num_hyperedges(), 1200);
        let avg = hg.avg_cardinality();
        assert!((avg - 3.0).abs() < 0.8, "avg clause len {avg}");
        hg.validate().unwrap();
    }

    #[test]
    fn dual_model_sizes() {
        let cfg = SatConfig::dual(300, 1200, 3.0);
        let hg = sat_hypergraph(&cfg);
        assert_eq!(hg.num_vertices(), 1200);
        // Some variables may never be used; allow a small shortfall.
        assert!(hg.num_hyperedges() <= 300);
        assert!(hg.num_hyperedges() > 250);
        hg.validate().unwrap();
    }

    #[test]
    fn dual_cardinality_reflects_variable_occurrences() {
        let cfg = SatConfig::dual(100, 2000, 3.0);
        let hg = sat_hypergraph(&cfg);
        // Average occurrences per variable ≈ clauses * len / vars = 60.
        let avg = hg.avg_cardinality();
        assert!(avg > 30.0, "dual cardinality should be large, got {avg}");
    }

    #[test]
    fn popularity_skew_creates_hub_variables() {
        let uniform = sat_hypergraph(&SatConfig {
            popularity_skew: 0.0,
            ..SatConfig::primal(500, 3000, 3.0)
        });
        let skewed = sat_hypergraph(&SatConfig {
            popularity_skew: 1.0,
            seed: 1,
            ..SatConfig::primal(500, 3000, 3.0)
        });
        assert!(
            skewed.max_degree() > uniform.max_degree(),
            "skewed max degree {} should exceed uniform {}",
            skewed.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SatConfig::primal(200, 800, 3.0);
        assert_eq!(sat_hypergraph(&cfg), sat_hypergraph(&cfg));
    }

    #[test]
    fn primal_and_dual_have_equal_pin_counts_modulo_unused_vars() {
        let primal = sat_hypergraph(&SatConfig::primal(200, 800, 3.0));
        let dual = sat_hypergraph(&SatConfig::dual(200, 800, 3.0));
        // Every (clause, variable) pin appears in both models.
        assert_eq!(primal.num_pins(), dual.num_pins());
    }
}
