//! Finite-element-mesh-style hypergraphs (the `2cubes_sphere`,
//! `ABACUS_shell_hd`, `ship_001` and `pdb1HYS` families).
//!
//! Symmetric sparse matrices from structural/FEM problems have a row-net
//! hypergraph in which every vertex has one hyperedge containing its spatial
//! neighbours: the nonzero pattern of its matrix row. We reproduce that by
//! placing vertices on a 3-D lattice and connecting each vertex to the
//! nearest lattice sites until the target cardinality is reached. The result
//! has strong locality — exactly the property that lets partitioners find
//! low-cut solutions on FEM matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Configuration for [`mesh_hypergraph`].
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Number of vertices (≈ matrix rows). One hyperedge is produced per
    /// vertex, as in the row-net model of a square matrix.
    pub num_vertices: usize,
    /// Target (average) hyperedge cardinality, i.e. nonzeros per row.
    pub target_cardinality: usize,
    /// Fraction of pins replaced by uniformly random remote vertices. Models
    /// the long-range couplings present in e.g. protein contact matrices
    /// (`pdb1HYS`); 0.0 gives a pure lattice stencil.
    pub jitter: f64,
    /// RNG seed (only used when `jitter > 0`).
    pub seed: u64,
    /// Instance name recorded on the hypergraph.
    pub name: String,
}

impl MeshConfig {
    /// A pure-stencil mesh configuration.
    pub fn new(num_vertices: usize, target_cardinality: usize) -> Self {
        Self {
            num_vertices,
            target_cardinality,
            jitter: 0.0,
            seed: 0,
            name: "mesh".to_string(),
        }
    }
}

/// 3-D lattice coordinates of vertex `v` in a cube of side `side`.
fn coords(v: usize, side: usize) -> (usize, usize, usize) {
    let z = v / (side * side);
    let rem = v % (side * side);
    (rem % side, rem / side, z)
}

/// Vertex id of lattice coordinates, if they are inside the cube and map to a
/// valid vertex (< n).
fn vertex_at(x: i64, y: i64, z: i64, side: usize, n: usize) -> Option<VertexId> {
    if x < 0 || y < 0 || z < 0 {
        return None;
    }
    let (x, y, z) = (x as usize, y as usize, z as usize);
    if x >= side || y >= side || z >= side {
        return None;
    }
    let v = z * side * side + y * side + x;
    (v < n).then_some(v as VertexId)
}

/// Generates a mesh-like hypergraph: one hyperedge per vertex containing the
/// vertex and its nearest lattice neighbours (by increasing Chebyshev shell),
/// truncated/extended to reach the target cardinality.
pub fn mesh_hypergraph(cfg: &MeshConfig) -> Hypergraph {
    assert!(cfg.num_vertices > 0, "need at least one vertex");
    let n = cfg.num_vertices;
    let side = (n as f64).cbrt().ceil() as usize;
    let side = side.max(1);
    let target = cfg.target_cardinality.clamp(2, n);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Precompute neighbour offsets ordered by (squared) distance, enough to
    // cover the target cardinality with margin.
    let radius = {
        let mut r = 1i64;
        while (2 * r + 1).pow(3) < 2 * target as i64 && r < side as i64 {
            r += 1;
        }
        r
    };
    let mut offsets: Vec<(i64, i64, i64)> = Vec::new();
    for dz in -radius..=radius {
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                if (dx, dy, dz) != (0, 0, 0) {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }
    offsets.sort_by_key(|&(dx, dy, dz)| dx * dx + dy * dy + dz * dz);

    let mut builder = HypergraphBuilder::with_capacity(n, n);
    builder.name(cfg.name.clone());
    let mut pins: Vec<VertexId> = Vec::with_capacity(target);
    for v in 0..n {
        let (x, y, z) = coords(v, side);
        pins.clear();
        pins.push(v as VertexId);
        for &(dx, dy, dz) in &offsets {
            if pins.len() >= target {
                break;
            }
            if let Some(u) = vertex_at(x as i64 + dx, y as i64 + dy, z as i64 + dz, side, n) {
                pins.push(u);
            }
        }
        // Fill up from random vertices if the stencil ran out (boundary
        // effects on very small meshes).
        while pins.len() < target {
            let u = rng.gen_range(0..n) as VertexId;
            if !pins.contains(&u) {
                pins.push(u);
            }
        }
        // Long-range jitter.
        if cfg.jitter > 0.0 {
            for pin in pins.iter_mut().skip(1) {
                if rng.gen_bool(cfg.jitter.clamp(0.0, 1.0)) {
                    *pin = rng.gen_range(0..n) as VertexId;
                }
            }
        }
        builder.add_hyperedge(pins.iter().copied());
    }
    builder.ensure_vertices(n);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hyperedge_per_vertex() {
        let hg = mesh_hypergraph(&MeshConfig::new(1000, 9));
        assert_eq!(hg.num_vertices(), 1000);
        assert_eq!(hg.num_hyperedges(), 1000);
        hg.validate().unwrap();
    }

    #[test]
    fn cardinality_matches_target() {
        let hg = mesh_hypergraph(&MeshConfig::new(2000, 16));
        let avg = hg.avg_cardinality();
        assert!((avg - 16.0).abs() < 1.0, "avg cardinality {avg} != 16");
    }

    #[test]
    fn pins_are_spatially_local_without_jitter() {
        let n = 1728; // 12^3
        let hg = mesh_hypergraph(&MeshConfig::new(n, 8));
        let side = (n as f64).cbrt().ceil() as usize;
        let mut total_dist = 0.0;
        let mut count = 0usize;
        for (e, pins) in hg.iter_edges() {
            let (x0, y0, z0) = coords(e as usize, side);
            for &v in pins {
                let (x, y, z) = coords(v as usize, side);
                let d = (x as f64 - x0 as f64).abs()
                    + (y as f64 - y0 as f64).abs()
                    + (z as f64 - z0 as f64).abs();
                total_dist += d;
                count += 1;
            }
        }
        let avg_dist = total_dist / count as f64;
        assert!(
            avg_dist < 2.5,
            "stencil pins should be close, avg {avg_dist}"
        );
    }

    #[test]
    fn jitter_introduces_long_range_pins() {
        let local = mesh_hypergraph(&MeshConfig::new(1728, 8));
        let jittered = mesh_hypergraph(&MeshConfig {
            jitter: 0.5,
            seed: 5,
            ..MeshConfig::new(1728, 8)
        });
        // Jitter should strictly change the structure.
        assert_ne!(local, jittered);
    }

    #[test]
    fn deterministic_without_jitter() {
        let a = mesh_hypergraph(&MeshConfig::new(500, 10));
        let b = mesh_hypergraph(&MeshConfig::new(500, 10));
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_mesh_still_builds() {
        let hg = mesh_hypergraph(&MeshConfig::new(3, 5));
        assert_eq!(hg.num_vertices(), 3);
        for e in hg.hyperedges() {
            assert!(hg.cardinality(e) <= 3);
            assert!(hg.cardinality(e) >= 2);
        }
    }
}
