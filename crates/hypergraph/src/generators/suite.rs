//! The ten benchmark hypergraphs of the paper's Table 1, reproduced as
//! synthetic instances with matching size, cardinality and structure family.
//!
//! The original files come from the Zenodo benchmark set of Schlag (2017)
//! (SuiteSparse matrices + SAT 2014 competition instances + a web crawl) and
//! are not redistributed here. Each [`PaperInstance`] knows its family and
//! its Table 1 statistics, and [`PaperInstance::generate`] builds a synthetic
//! stand-in of the same shape; an optional scale factor shrinks the instance
//! proportionally (cardinalities are preserved) so the full experiment matrix
//! runs in minutes on a laptop instead of on 576 ARCHER cores.
//!
//! If the real files are available, load them with [`crate::io::hmetis`] or
//! [`crate::io::matrix_market`] instead — every consumer in this workspace
//! only sees a [`Hypergraph`].

use crate::generators::{
    mesh::{mesh_hypergraph, MeshConfig},
    powerlaw::{powerlaw_hypergraph, PowerLawConfig},
    random::{random_hypergraph, RandomConfig},
    sat::{sat_hypergraph, SatConfig, SatModel},
};
use crate::{Hypergraph, HypergraphStats};

/// Structural family of a benchmark instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceFamily {
    /// FEM / structural mesh matrix (row-net model).
    Mesh,
    /// FEM-like matrix with long-range couplings (protein contact map).
    MeshLongRange,
    /// Unstructured random sparse matrix.
    RandomSparse,
    /// Power-law web graph.
    WebGraph,
    /// SAT instance, primal model (vertices = variables).
    SatPrimal,
    /// SAT instance, dual model (vertices = clauses).
    SatDual,
}

/// The paper's Table 1 target shape of one instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceProfile {
    /// Vertices in the original instance.
    pub vertices: usize,
    /// Hyperedges in the original instance.
    pub hyperedges: usize,
    /// Total pins (NNZ) in the original instance.
    pub pins: usize,
    /// Average hyperedge cardinality.
    pub avg_cardinality: f64,
    /// Hyperedge / vertex ratio.
    pub edge_vertex_ratio: f64,
}

/// The ten hypergraphs used throughout the paper's evaluation (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperInstance {
    /// `sat14_itox_vc1130 dual` — SAT dual model.
    Sat14ItoxVc1130Dual,
    /// `2cubes_sphere` — FEM mesh (electromagnetics).
    TwoCubesSphere,
    /// `ABACUS_shell_hd` — structural shell model.
    AbacusShellHd,
    /// `sparsine` — unstructured sparse matrix.
    Sparsine,
    /// `pdb1HYS` — protein contact matrix (dense rows, long-range).
    Pdb1Hys,
    /// `sat14_10pipe_q0_k primal` — SAT primal model, many short clauses.
    Sat14TenPipeQ0KPrimal,
    /// `sat14_E02F22` — SAT primal model, longer clauses.
    Sat14E02F22,
    /// `webbase-1M` — web crawl, power-law.
    Webbase1M,
    /// `ship_001` — structural FEM, very dense rows.
    Ship001,
    /// `sat14_atco_enc1_opt1_05_21 dual` — SAT dual model, large hyperedges.
    Sat14AtcoEnc1Opt10521Dual,
}

impl PaperInstance {
    /// All ten instances, in the order of the paper's Table 1.
    pub fn all() -> [PaperInstance; 10] {
        use PaperInstance::*;
        [
            Sat14ItoxVc1130Dual,
            TwoCubesSphere,
            AbacusShellHd,
            Sparsine,
            Pdb1Hys,
            Sat14TenPipeQ0KPrimal,
            Sat14E02F22,
            Webbase1M,
            Ship001,
            Sat14AtcoEnc1Opt10521Dual,
        ]
    }

    /// The four instances whose refinement history is plotted in Figure 3.
    pub fn fig3_instances() -> [PaperInstance; 4] {
        use PaperInstance::*;
        [TwoCubesSphere, Sat14ItoxVc1130Dual, Sparsine, AbacusShellHd]
    }

    /// The dataset name exactly as printed in the paper.
    pub fn paper_name(&self) -> &'static str {
        use PaperInstance::*;
        match self {
            Sat14ItoxVc1130Dual => "sat14_itox_vc1130_dual",
            TwoCubesSphere => "2cubes_sphere",
            AbacusShellHd => "ABACUS_shell_hd",
            Sparsine => "sparsine",
            Pdb1Hys => "pdb1HYS",
            Sat14TenPipeQ0KPrimal => "sat14_10pipe_q0_k_primal",
            Sat14E02F22 => "sat14_E02F22",
            Webbase1M => "webbase-1M",
            Ship001 => "ship_001",
            Sat14AtcoEnc1Opt10521Dual => "sat14_atco_enc1_opt1_05_21_dual",
        }
    }

    /// Structural family used for synthesis.
    pub fn family(&self) -> InstanceFamily {
        use PaperInstance::*;
        match self {
            Sat14ItoxVc1130Dual | Sat14AtcoEnc1Opt10521Dual => InstanceFamily::SatDual,
            Sat14TenPipeQ0KPrimal | Sat14E02F22 => InstanceFamily::SatPrimal,
            TwoCubesSphere | AbacusShellHd | Ship001 => InstanceFamily::Mesh,
            Pdb1Hys => InstanceFamily::MeshLongRange,
            Sparsine => InstanceFamily::RandomSparse,
            Webbase1M => InstanceFamily::WebGraph,
        }
    }

    /// The paper's Table 1 statistics for this instance (the synthesis
    /// target at `scale = 1.0`).
    pub fn profile(&self) -> InstanceProfile {
        use PaperInstance::*;
        let (vertices, hyperedges, pins, avg_cardinality, edge_vertex_ratio) = match self {
            Sat14ItoxVc1130Dual => (441_729, 152_256, 1_143_974, 7.51, 0.34),
            TwoCubesSphere => (101_492, 101_492, 1_647_264, 16.23, 1.00),
            AbacusShellHd => (23_412, 23_412, 218_484, 9.33, 1.00),
            Sparsine => (50_000, 50_000, 1_548_988, 30.98, 1.00),
            Pdb1Hys => (36_417, 36_417, 4_344_765, 119.31, 1.00),
            Sat14TenPipeQ0KPrimal => (77_639, 2_082_017, 6_164_595, 2.96, 26.82),
            Sat14E02F22 => (27_148, 1_301_188, 11_462_079, 8.81, 47.93),
            Webbase1M => (1_000_005, 1_000_005, 3_105_536, 3.11, 1.00),
            Ship001 => (34_920, 34_920, 4_644_230, 133.0, 1.00),
            Sat14AtcoEnc1Opt10521Dual => (561_784, 59_517, 2_167_217, 36.41, 0.11),
        };
        InstanceProfile {
            vertices,
            hyperedges,
            pins,
            avg_cardinality,
            edge_vertex_ratio,
        }
    }

    /// Generates the synthetic stand-in for this instance.
    pub fn generate(&self, cfg: &SuiteConfig) -> Hypergraph {
        let profile = self.profile();
        let scale = cfg.scale.clamp(1e-4, 1.0);
        let sv = ((profile.vertices as f64 * scale).round() as usize).max(cfg.min_vertices);
        let se = ((profile.hyperedges as f64 * scale).round() as usize).max(16);
        let seed = cfg.seed ^ (*self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut hg = match self.family() {
            InstanceFamily::Mesh => mesh_hypergraph(&MeshConfig {
                num_vertices: sv,
                target_cardinality: profile.avg_cardinality.round() as usize,
                jitter: 0.0,
                seed,
                name: self.paper_name().to_string(),
            }),
            InstanceFamily::MeshLongRange => mesh_hypergraph(&MeshConfig {
                num_vertices: sv,
                target_cardinality: profile.avg_cardinality.round() as usize,
                jitter: 0.15,
                seed,
                name: self.paper_name().to_string(),
            }),
            InstanceFamily::RandomSparse => random_hypergraph(&RandomConfig {
                name: self.paper_name().to_string(),
                ..RandomConfig::with_avg_cardinality(sv, se, profile.avg_cardinality, seed)
            }),
            InstanceFamily::WebGraph => powerlaw_hypergraph(&PowerLawConfig {
                num_vertices: sv,
                num_hyperedges: se,
                avg_cardinality: profile.avg_cardinality,
                exponent: 2.1,
                locality: 0.8,
                seed,
                name: self.paper_name().to_string(),
            }),
            InstanceFamily::SatPrimal => {
                let avg_clause_len = profile.pins as f64 / profile.hyperedges as f64;
                sat_hypergraph(&SatConfig {
                    num_variables: sv,
                    num_clauses: se,
                    avg_clause_len,
                    popularity_skew: 0.7,
                    model: SatModel::Primal,
                    seed,
                    name: self.paper_name().to_string(),
                })
            }
            InstanceFamily::SatDual => {
                // Dual: vertices are clauses, hyperedges are variables.
                let avg_clause_len = profile.pins as f64 / profile.vertices as f64;
                sat_hypergraph(&SatConfig {
                    num_variables: se,
                    num_clauses: sv,
                    avg_clause_len,
                    popularity_skew: 0.7,
                    model: SatModel::Dual,
                    seed,
                    name: self.paper_name().to_string(),
                })
            }
        };
        hg.set_name(self.paper_name());
        hg
    }

    /// Convenience: generate and return the statistics alongside.
    pub fn generate_with_stats(&self, cfg: &SuiteConfig) -> (Hypergraph, HypergraphStats) {
        let hg = self.generate(cfg);
        let stats = HypergraphStats::compute(&hg);
        (hg, stats)
    }
}

impl std::fmt::Display for PaperInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Parameters controlling suite generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteConfig {
    /// Linear scale applied to vertex and hyperedge counts (1.0 = paper
    /// size). Cardinalities are preserved.
    pub scale: f64,
    /// RNG seed; each instance derives its own stream from this.
    pub seed: u64,
    /// Lower bound on the scaled vertex count (so extreme scales still yield
    /// workable instances).
    pub min_vertices: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 2019,
            min_vertices: 256,
        }
    }
}

impl SuiteConfig {
    /// Full-size instances (paper scale).
    pub fn full() -> Self {
        Self::default()
    }

    /// A scaled-down configuration suitable for CI / laptop experiments.
    pub fn scaled(scale: f64) -> Self {
        Self {
            scale,
            ..Self::default()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: f64 = 0.01;

    #[test]
    fn all_lists_ten_distinct_instances() {
        let all = PaperInstance::all();
        assert_eq!(all.len(), 10);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fig3_instances_are_a_subset_of_all() {
        let all = PaperInstance::all();
        for inst in PaperInstance::fig3_instances() {
            assert!(all.contains(&inst));
        }
    }

    #[test]
    fn every_instance_generates_a_valid_hypergraph() {
        let cfg = SuiteConfig::scaled(TEST_SCALE);
        for inst in PaperInstance::all() {
            let hg = inst.generate(&cfg);
            hg.validate()
                .unwrap_or_else(|e| panic!("{inst}: invalid hypergraph: {e}"));
            assert_eq!(hg.name(), inst.paper_name());
            assert!(hg.num_vertices() >= cfg.min_vertices, "{inst} too small");
            assert!(hg.num_hyperedges() > 0, "{inst} has no hyperedges");
        }
    }

    #[test]
    fn scaled_sizes_track_the_paper_profile() {
        let cfg = SuiteConfig::scaled(0.02);
        for inst in [
            PaperInstance::TwoCubesSphere,
            PaperInstance::Sparsine,
            PaperInstance::Webbase1M,
        ] {
            let profile = inst.profile();
            let hg = inst.generate(&cfg);
            let expected_v = (profile.vertices as f64 * 0.02).round();
            let ratio = hg.num_vertices() as f64 / expected_v;
            assert!(
                (0.8..1.2).contains(&ratio),
                "{inst}: vertices {} vs expected {expected_v}",
                hg.num_vertices()
            );
        }
    }

    #[test]
    fn cardinality_profile_is_preserved_under_scaling() {
        let cfg = SuiteConfig::scaled(0.02);
        for inst in [
            PaperInstance::TwoCubesSphere,
            PaperInstance::Pdb1Hys,
            PaperInstance::Sparsine,
        ] {
            let hg = inst.generate(&cfg);
            let target = inst.profile().avg_cardinality;
            let got = hg.avg_cardinality();
            assert!(
                (got - target).abs() / target < 0.35,
                "{inst}: avg cardinality {got} vs target {target}"
            );
        }
    }

    #[test]
    fn dual_instances_have_more_vertices_than_hyperedges() {
        let cfg = SuiteConfig::scaled(TEST_SCALE);
        for inst in [
            PaperInstance::Sat14ItoxVc1130Dual,
            PaperInstance::Sat14AtcoEnc1Opt10521Dual,
        ] {
            let hg = inst.generate(&cfg);
            assert!(
                hg.num_vertices() > hg.num_hyperedges(),
                "{inst}: dual model should have |V| > |E|"
            );
        }
    }

    #[test]
    fn primal_instances_have_more_hyperedges_than_vertices() {
        let cfg = SuiteConfig::scaled(TEST_SCALE);
        for inst in [
            PaperInstance::Sat14TenPipeQ0KPrimal,
            PaperInstance::Sat14E02F22,
        ] {
            let hg = inst.generate(&cfg);
            assert!(
                hg.num_hyperedges() > hg.num_vertices(),
                "{inst}: primal model should have |E| > |V|"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SuiteConfig::scaled(TEST_SCALE);
        let a = PaperInstance::Sparsine.generate(&cfg);
        let b = PaperInstance::Sparsine.generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let a = PaperInstance::Sparsine.generate(&SuiteConfig::scaled(TEST_SCALE).with_seed(1));
        let b = PaperInstance::Sparsine.generate(&SuiteConfig::scaled(TEST_SCALE).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn paper_names_are_unique() {
        let mut names: Vec<_> = PaperInstance::all()
            .iter()
            .map(|i| i.paper_name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
