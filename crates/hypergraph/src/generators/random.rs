//! Unstructured random hypergraphs (the `sparsine` family).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Distribution of hyperedge cardinalities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CardinalityDist {
    /// Every hyperedge has exactly this many pins.
    Fixed(usize),
    /// Cardinality drawn uniformly from `min..=max`.
    Uniform {
        /// Minimum cardinality (inclusive).
        min: usize,
        /// Maximum cardinality (inclusive).
        max: usize,
    },
}

impl CardinalityDist {
    fn sample(&self, rng: &mut impl Rng) -> usize {
        match *self {
            CardinalityDist::Fixed(k) => k,
            CardinalityDist::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.gen_range(min..=max)
            }
        }
    }

    /// Expected cardinality of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            CardinalityDist::Fixed(k) => k as f64,
            CardinalityDist::Uniform { min, max } => (min + max) as f64 / 2.0,
        }
    }
}

/// Configuration for [`random_hypergraph`].
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of hyperedges.
    pub num_hyperedges: usize,
    /// Cardinality distribution of the hyperedges.
    pub cardinality: CardinalityDist,
    /// RNG seed (generation is deterministic for a given config).
    pub seed: u64,
    /// Instance name recorded on the hypergraph.
    pub name: String,
}

impl RandomConfig {
    /// A convenient config with uniform cardinality `avg/2 .. 3*avg/2`.
    pub fn with_avg_cardinality(
        num_vertices: usize,
        num_hyperedges: usize,
        avg_cardinality: f64,
        seed: u64,
    ) -> Self {
        let avg = avg_cardinality.max(2.0);
        let min = ((avg / 2.0).floor() as usize).max(2);
        let max = ((avg * 1.5).ceil() as usize).max(min);
        Self {
            num_vertices,
            num_hyperedges,
            cardinality: CardinalityDist::Uniform { min, max },
            seed,
            name: "random".to_string(),
        }
    }
}

/// Generates a hypergraph whose hyperedges contain uniformly random distinct
/// pins. This models unstructured sparse matrices such as `sparsine`
/// (50 000 × 50 000, ~31 nonzeros per row, no locality structure).
pub fn random_hypergraph(cfg: &RandomConfig) -> Hypergraph {
    assert!(cfg.num_vertices > 0, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut builder = HypergraphBuilder::with_capacity(cfg.num_vertices, cfg.num_hyperedges);
    builder.name(cfg.name.clone());
    let mut pins: Vec<VertexId> = Vec::new();
    for _ in 0..cfg.num_hyperedges {
        let k = cfg
            .cardinality
            .sample(&mut rng)
            .min(cfg.num_vertices)
            .max(1);
        pins.clear();
        // Rejection-free enough for k << n; fall back to retry loop otherwise.
        while pins.len() < k {
            let v = rng.gen_range(0..cfg.num_vertices) as VertexId;
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        builder.add_hyperedge(pins.iter().copied());
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let cfg = RandomConfig {
            num_vertices: 200,
            num_hyperedges: 50,
            cardinality: CardinalityDist::Fixed(5),
            seed: 1,
            name: "rnd".into(),
        };
        let hg = random_hypergraph(&cfg);
        assert_eq!(hg.num_vertices(), 200);
        assert_eq!(hg.num_hyperedges(), 50);
        assert_eq!(hg.num_pins(), 250);
        assert_eq!(hg.name(), "rnd");
        hg.validate().unwrap();
    }

    #[test]
    fn pins_are_distinct_within_each_edge() {
        let cfg = RandomConfig {
            num_vertices: 20,
            num_hyperedges: 100,
            cardinality: CardinalityDist::Uniform { min: 2, max: 10 },
            seed: 7,
            name: String::new(),
        };
        let hg = random_hypergraph(&cfg);
        for e in hg.hyperedges() {
            let pins = hg.pins(e);
            for w in pins.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = RandomConfig::with_avg_cardinality(500, 300, 8.0, 42);
        let a = random_hypergraph(&cfg);
        let b = random_hypergraph(&cfg);
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        let c = random_hypergraph(&cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn cardinality_is_capped_by_vertex_count() {
        let cfg = RandomConfig {
            num_vertices: 4,
            num_hyperedges: 3,
            cardinality: CardinalityDist::Fixed(100),
            seed: 3,
            name: String::new(),
        };
        let hg = random_hypergraph(&cfg);
        for e in hg.hyperedges() {
            assert_eq!(hg.cardinality(e), 4);
        }
    }

    #[test]
    fn avg_cardinality_tracks_target() {
        let cfg = RandomConfig::with_avg_cardinality(2000, 400, 16.0, 11);
        let hg = random_hypergraph(&cfg);
        let avg = hg.avg_cardinality();
        assert!(
            (avg - 16.0).abs() < 3.0,
            "avg cardinality {avg} too far from 16"
        );
    }

    #[test]
    fn dist_mean_matches_definition() {
        assert_eq!(CardinalityDist::Fixed(7).mean(), 7.0);
        assert_eq!(CardinalityDist::Uniform { min: 2, max: 6 }.mean(), 4.0);
    }
}
