//! Synthetic hypergraph generators.
//!
//! The paper evaluates HyperPRAW on ten hypergraphs drawn from a public
//! benchmark collection (SuiteSparse matrices, SAT-competition instances and
//! a web crawl). Those files are not redistributed here; instead this module
//! provides generators for the same *structural families* —
//!
//! * [`mesh`] — finite-element–style meshes / symmetric sparse matrices
//!   (`2cubes_sphere`, `ABACUS_shell_hd`, `ship_001`, `pdb1HYS`),
//! * [`random`] — unstructured random sparse matrices (`sparsine`),
//! * [`powerlaw`] — power-law web graphs (`webbase-1M`),
//! * [`sat`] — SAT instances in primal and dual hypergraph models
//!   (the four `sat14_*` instances),
//!
//! and [`suite`], which instantiates each of the ten paper instances with the
//! vertex/hyperedge/cardinality profile of Table 1 (optionally scaled down).
//! Real `.hgr`/`.mtx` files can be used instead via [`crate::io`].

pub mod mesh;
pub mod powerlaw;
pub mod random;
pub mod sat;
pub mod suite;

pub use mesh::{mesh_hypergraph, MeshConfig};
pub use powerlaw::{powerlaw_hypergraph, PowerLawConfig};
pub use random::{random_hypergraph, CardinalityDist, RandomConfig};
pub use sat::{sat_hypergraph, SatConfig, SatModel};
pub use suite::{PaperInstance, SuiteConfig};
