//! Power-law (web-graph-like) hypergraphs (the `webbase-1M` family).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Configuration for [`powerlaw_hypergraph`].
#[derive(Clone, Debug)]
pub struct PowerLawConfig {
    /// Number of vertices (pages).
    pub num_vertices: usize,
    /// Number of hyperedges (one per page: the page plus its outgoing links).
    pub num_hyperedges: usize,
    /// Target average cardinality (≈ 1 + average out-degree).
    pub avg_cardinality: f64,
    /// Power-law exponent of the cardinality distribution (typically 2.1).
    pub exponent: f64,
    /// Fraction of pins drawn from a local window around the source vertex
    /// (models host-level locality of web links); the rest are drawn with
    /// preferential attachment across the whole graph.
    pub locality: f64,
    /// RNG seed.
    pub seed: u64,
    /// Instance name recorded on the hypergraph.
    pub name: String,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            num_hyperedges: 10_000,
            avg_cardinality: 3.1,
            exponent: 2.1,
            locality: 0.8,
            seed: 0,
            name: "powerlaw".to_string(),
        }
    }
}

/// Samples a value from a discrete power-law in `[min, max]` with the given
/// exponent using inverse-transform sampling on the continuous Pareto
/// distribution.
fn sample_powerlaw(rng: &mut impl Rng, min: f64, max: f64, exponent: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let a = 1.0 - exponent;
    // Inverse CDF of truncated power law p(x) ~ x^-exponent on [min, max].
    ((max.powf(a) - min.powf(a)) * u + min.powf(a)).powf(1.0 / a)
}

/// Generates a web-graph-like hypergraph: each hyperedge is a page together
/// with its outgoing links; cardinalities follow a truncated power law and
/// most links land near the source page (host locality), with a preferential
/// tail of popular pages.
pub fn powerlaw_hypergraph(cfg: &PowerLawConfig) -> Hypergraph {
    assert!(cfg.num_vertices > 1, "need at least two vertices");
    assert!(cfg.exponent > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.num_vertices;
    let mut builder = HypergraphBuilder::with_capacity(n, cfg.num_hyperedges);
    builder.name(cfg.name.clone());

    // Calibrate the minimum cardinality so the *realised* mean (after
    // rounding and clamping to [2, n]) hits the requested average. The
    // continuous truncated-Pareto mean is biased low once clamping kicks in,
    // so calibrate empirically by bisection on x_min with a fixed calibration
    // RNG stream.
    let max_card = (n as f64).sqrt().clamp(4.0, 10_000.0);
    let target = cfg.avg_cardinality.max(2.0);
    let exponent = cfg.exponent;
    let empirical_mean = |xmin: f64| -> f64 {
        let mut cal_rng = StdRng::seed_from_u64(0xCA11_B8A7E);
        let samples = 4000;
        let sum: f64 = (0..samples)
            .map(|_| {
                sample_powerlaw(&mut cal_rng, xmin, max_card, exponent)
                    .round()
                    .clamp(2.0, n as f64)
            })
            .sum();
        sum / samples as f64
    };
    let (mut lo, mut hi) = (0.3f64, target.max(2.0) * 2.0);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if empirical_mean(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let x_min = 0.5 * (lo + hi);

    // Preferential-attachment pool: popular targets appear many times.
    let pool_size = (n / 4).max(16);
    let mut popular: Vec<VertexId> = Vec::with_capacity(pool_size);
    for _ in 0..pool_size {
        // Quadratic skew towards low ids = "old" popular pages.
        let r: f64 = rng.gen_range(0.0..1.0);
        popular.push(((r * r) * n as f64) as u32 % n as u32);
    }

    let window = (n / 100).max(8);
    let mut pins: Vec<VertexId> = Vec::new();
    for e in 0..cfg.num_hyperedges {
        let source = (e % n) as VertexId;
        let card = sample_powerlaw(&mut rng, x_min, max_card, cfg.exponent).round() as usize;
        let card = card.clamp(2, n);
        pins.clear();
        pins.push(source);
        while pins.len() < card {
            let v = if rng.gen_bool(cfg.locality.clamp(0.0, 1.0)) {
                // Local link: near the source page.
                let offset = rng.gen_range(0..window) as i64 - (window / 2) as i64;
                let t = source as i64 + offset;
                t.rem_euclid(n as i64) as VertexId
            } else {
                // Global link: preferential attachment via the popular pool.
                popular[rng.gen_range(0..popular.len())]
            };
            if !pins.contains(&v) {
                pins.push(v);
            } else if pins.len() >= n {
                break;
            } else {
                // Collision: fall back to a uniform vertex to guarantee
                // progress for tiny graphs.
                let v = rng.gen_range(0..n) as VertexId;
                if !pins.contains(&v) {
                    pins.push(v);
                }
            }
        }
        builder.add_hyperedge(pins.iter().copied());
    }
    builder.ensure_vertices(n);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let cfg = PowerLawConfig {
            num_vertices: 1000,
            num_hyperedges: 1000,
            ..PowerLawConfig::default()
        };
        let hg = powerlaw_hypergraph(&cfg);
        assert_eq!(hg.num_vertices(), 1000);
        assert_eq!(hg.num_hyperedges(), 1000);
        hg.validate().unwrap();
    }

    #[test]
    fn average_cardinality_close_to_target() {
        let cfg = PowerLawConfig {
            num_vertices: 5000,
            num_hyperedges: 5000,
            avg_cardinality: 3.1,
            ..PowerLawConfig::default()
        };
        let hg = powerlaw_hypergraph(&cfg);
        let avg = hg.avg_cardinality();
        assert!(
            (avg - 3.1).abs() < 1.2,
            "average cardinality {avg} too far from 3.1"
        );
    }

    #[test]
    fn cardinalities_have_a_heavy_tail() {
        let cfg = PowerLawConfig {
            num_vertices: 5000,
            num_hyperedges: 5000,
            avg_cardinality: 3.1,
            ..PowerLawConfig::default()
        };
        let hg = powerlaw_hypergraph(&cfg);
        let max = hg.max_cardinality();
        assert!(
            max as f64 > 4.0 * hg.avg_cardinality(),
            "expected a heavy tail, max cardinality was {max}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PowerLawConfig {
            num_vertices: 500,
            num_hyperedges: 500,
            seed: 9,
            ..PowerLawConfig::default()
        };
        assert_eq!(powerlaw_hypergraph(&cfg), powerlaw_hypergraph(&cfg));
    }

    #[test]
    fn locality_produces_mostly_nearby_links() {
        let cfg = PowerLawConfig {
            num_vertices: 2000,
            num_hyperedges: 2000,
            locality: 0.95,
            ..PowerLawConfig::default()
        };
        let hg = powerlaw_hypergraph(&cfg);
        let n = hg.num_vertices() as i64;
        let window = (n / 100).max(8);
        let mut near = 0usize;
        let mut far = 0usize;
        for (e, pins) in hg.iter_edges() {
            let source = (e as i64) % n;
            for &v in pins {
                let d = (v as i64 - source)
                    .rem_euclid(n)
                    .min((source - v as i64).rem_euclid(n));
                if d <= window {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
        assert!(near > far, "expected locality: near={near}, far={far}");
    }
}
