//! Streaming, vertex-major access to on-disk hypergraphs.
//!
//! The in-memory readers in [`crate::io::hmetis`] and
//! [`crate::io::edgelist`] materialise the full CSR structure, which caps
//! the hypergraph size at available RAM. This module provides the
//! out-of-core alternative used by the `hyperpraw-lowmem` partitioner:
//!
//! * [`visit_hgr_nets`] / [`visit_edgelist_nets`] — a single **edge-major**
//!   pass over a file, invoking a callback per net without storing pins,
//! * [`VertexStream`] — the **vertex-major** record interface streaming
//!   partitioners consume: `(vertex, weight, incident nets)` per record,
//! * [`InMemoryVertexStream`] — adapter over an already-built
//!   [`Hypergraph`] (tests, small inputs),
//! * [`DiskVertexStream`] + [`stream_hgr_file`] / [`stream_edgelist_file`]
//!   — an external-memory transpose: the input file is read **once**,
//!   `(vertex, net)` pairs are spilled to temporary bucket files grouped by
//!   vertex range, and records are then emitted bucket by bucket in vertex
//!   order. Peak memory is bounded by [`StreamOptions::buffer_bytes`]
//!   (buckets larger than the buffer are split on disk before loading);
//!   only O(|V|)-class state inherent to the problem (vertex weights when
//!   the file carries them) is ever proportional to the hypergraph.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::io::{IoError, IoResult};
use crate::{HyperedgeId, Hypergraph, VertexId};

/// One record of a vertex-major stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VertexRecord {
    /// The vertex id (dense, `0..num_vertices`).
    pub vertex: VertexId,
    /// The vertex weight (1.0 unless the file carries weights).
    pub weight: f64,
    /// Ids of the nets (hyperedges) incident to the vertex, ascending.
    pub nets: Vec<HyperedgeId>,
}

/// A one-pass, restartable source of [`VertexRecord`]s.
///
/// Every vertex id in `0..num_vertices()` is yielded exactly once per pass,
/// in a deterministic order (implementations document theirs). `reset`
/// rewinds for another pass without re-reading the original input.
pub trait VertexStream {
    /// Number of vertices the stream will yield per pass.
    fn num_vertices(&self) -> usize;

    /// Number of nets (hyperedges) of the underlying hypergraph.
    fn num_nets(&self) -> usize;

    /// Fills `record` with the next vertex. Returns `false` at end of pass.
    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool>;

    /// Rewinds the stream to the beginning of the pass.
    fn reset(&mut self) -> IoResult<()>;

    /// Sum of all vertex weights, when the stream knows it up front
    /// (consumers fall back to unit weights otherwise).
    fn total_vertex_weight(&self) -> Option<f64> {
        None
    }
}

/// A mutable borrow of a stream is itself a stream, so consumers that take
/// a stream by value (e.g. the restreaming engine's source adapters) also
/// accept `&mut stream` without giving up ownership.
impl<S: VertexStream + ?Sized> VertexStream for &mut S {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_nets(&self) -> usize {
        (**self).num_nets()
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        (**self).next_into(record)
    }

    fn reset(&mut self) -> IoResult<()> {
        (**self).reset()
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        (**self).total_vertex_weight()
    }
}

/// [`VertexStream`] over an in-memory [`Hypergraph`], yielding vertices in
/// natural id order. Used by tests and by callers whose input already fits
/// in RAM.
#[derive(Clone, Debug)]
pub struct InMemoryVertexStream<'a> {
    hg: &'a Hypergraph,
    cursor: usize,
}

impl<'a> InMemoryVertexStream<'a> {
    /// Creates a stream over `hg`.
    pub fn new(hg: &'a Hypergraph) -> Self {
        Self { hg, cursor: 0 }
    }
}

impl VertexStream for InMemoryVertexStream<'_> {
    fn num_vertices(&self) -> usize {
        self.hg.num_vertices()
    }

    fn num_nets(&self) -> usize {
        self.hg.num_hyperedges()
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        if self.cursor >= self.hg.num_vertices() {
            return Ok(false);
        }
        let v = self.cursor as VertexId;
        record.vertex = v;
        record.weight = self.hg.vertex_weight(v);
        record.nets.clear();
        record.nets.extend_from_slice(self.hg.incident_edges(v));
        self.cursor += 1;
        Ok(true)
    }

    fn reset(&mut self) -> IoResult<()> {
        self.cursor = 0;
        Ok(())
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        Some(self.hg.total_vertex_weight())
    }
}

/// Summary of an edge-major pass over an hMETIS file.
#[derive(Clone, Debug)]
pub struct HgrStreamSummary {
    /// `|V|` from the header.
    pub num_vertices: usize,
    /// `|E|` from the header.
    pub num_nets: usize,
    /// Total pins visited.
    pub num_pins: usize,
    /// Per-vertex weights when the header's `fmt` declares them.
    pub vertex_weights: Option<Vec<f64>>,
}

/// Streams an hMETIS `.hgr` file **edge-major** in a single pass, invoking
/// `sink(net, pins)` per hyperedge with 0-based vertex ids, without
/// materialising any per-net state beyond one line's pins.
///
/// Accepts the same dialect as [`crate::io::hmetis::read_hgr`] (comments,
/// `fmt` ∈ {none, 1, 10, 11}, 1-based vertex ids) and reports the same
/// parse errors, so the two readers agree on every valid and invalid input.
pub fn visit_hgr_nets<R: BufRead>(
    reader: R,
    sink: &mut dyn FnMut(HyperedgeId, &[VertexId]) -> IoResult<()>,
) -> IoResult<HgrStreamSummary> {
    let mut lines = reader.lines().enumerate();

    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i + 1, trimmed.to_string());
            }
            None => return Err(IoError::parse(1, "empty file: missing header")),
        }
    };

    let mut parts = header.split_whitespace();
    let num_nets: usize = parts
        .next()
        .ok_or_else(|| IoError::parse(header_line_no, "missing hyperedge count"))?
        .parse()
        .map_err(|_| IoError::parse(header_line_no, "invalid hyperedge count"))?;
    let num_vertices: usize = parts
        .next()
        .ok_or_else(|| IoError::parse(header_line_no, "missing vertex count"))?
        .parse()
        .map_err(|_| IoError::parse(header_line_no, "invalid vertex count"))?;
    let fmt: u32 = match parts.next() {
        Some(tok) => tok
            .parse()
            .map_err(|_| IoError::parse(header_line_no, "invalid fmt field"))?,
        None => 0,
    };
    let has_edge_weights = fmt == 1 || fmt == 11;
    let has_vertex_weights = fmt == 10 || fmt == 11;

    let mut pins: Vec<VertexId> = Vec::new();
    let mut nets_read = 0usize;
    let mut num_pins = 0usize;
    let mut vertex_weights: Vec<f64> = Vec::new();

    for (i, line) in lines {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if nets_read < num_nets {
            let mut tokens = trimmed.split_whitespace();
            if has_edge_weights {
                // Net weights are parsed for validation but not forwarded:
                // the vertex-major stream treats nets uniformly.
                let _: f64 = tokens
                    .next()
                    .ok_or_else(|| IoError::parse(line_no, "missing hyperedge weight"))?
                    .parse()
                    .map_err(|_| IoError::parse(line_no, "invalid hyperedge weight"))?;
            }
            pins.clear();
            for tok in tokens {
                let v: usize = tok
                    .parse()
                    .map_err(|_| IoError::parse(line_no, format!("invalid vertex id '{tok}'")))?;
                if v == 0 || v > num_vertices {
                    return Err(IoError::parse(
                        line_no,
                        format!("vertex id {v} out of range 1..={num_vertices}"),
                    ));
                }
                pins.push((v - 1) as VertexId);
            }
            if pins.is_empty() {
                return Err(IoError::parse(line_no, "hyperedge with no pins"));
            }
            // Mirror `HypergraphBuilder`: pins are sorted and duplicate
            // pins within one net are dropped, so streaming and in-memory
            // readers agree on every input.
            pins.sort_unstable();
            pins.dedup();
            num_pins += pins.len();
            sink(nets_read as HyperedgeId, &pins)?;
            nets_read += 1;
        } else if has_vertex_weights && vertex_weights.len() < num_vertices {
            let w: f64 = trimmed
                .parse()
                .map_err(|_| IoError::parse(line_no, "invalid vertex weight"))?;
            vertex_weights.push(w);
        } else {
            return Err(IoError::parse(line_no, "unexpected extra data"));
        }
    }

    if nets_read != num_nets {
        return Err(IoError::parse(
            header_line_no,
            format!("expected {num_nets} hyperedges, found {nets_read}"),
        ));
    }
    if has_vertex_weights && vertex_weights.len() != num_vertices {
        return Err(IoError::parse(
            header_line_no,
            format!(
                "expected {num_vertices} vertex weights, found {}",
                vertex_weights.len()
            ),
        ));
    }

    Ok(HgrStreamSummary {
        num_vertices,
        num_nets,
        num_pins,
        vertex_weights: has_vertex_weights.then_some(vertex_weights),
    })
}

/// Summary of an edge-major pass over an edge-list file.
#[derive(Clone, Copy, Debug)]
pub struct EdgeListStreamSummary {
    /// `max vertex id + 1` over the whole file.
    pub num_vertices: usize,
    /// Number of nets (non-comment lines).
    pub num_nets: usize,
    /// Total pins visited.
    pub num_pins: usize,
}

/// Streams a whitespace edge-list file (0-based ids, `#` comments, one net
/// per line) **edge-major** in a single pass, invoking `sink(net, pins)`
/// per line.
pub fn visit_edgelist_nets<R: BufRead>(
    reader: R,
    sink: &mut dyn FnMut(HyperedgeId, &[VertexId]) -> IoResult<()>,
) -> IoResult<EdgeListStreamSummary> {
    let mut pins: Vec<VertexId> = Vec::new();
    let mut num_vertices = 0usize;
    let mut num_nets = 0usize;
    let mut num_pins = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        pins.clear();
        for tok in t.split_whitespace() {
            let v: VertexId = tok
                .parse()
                .map_err(|_| IoError::parse(line_no, format!("invalid vertex id '{tok}'")))?;
            num_vertices = num_vertices.max(v as usize + 1);
            pins.push(v);
        }
        // Mirror `HypergraphBuilder`: sorted pins, duplicates dropped.
        pins.sort_unstable();
        pins.dedup();
        num_pins += pins.len();
        sink(num_nets as HyperedgeId, &pins)?;
        num_nets += 1;
    }
    Ok(EdgeListStreamSummary {
        num_vertices,
        num_nets,
        num_pins,
    })
}

/// Tuning knobs of the on-disk transpose behind [`DiskVertexStream`].
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// Upper bound on the bytes of `(vertex, net)` pairs held in memory at
    /// once while emitting records (one bucket). Buckets that end up larger
    /// are split on disk before they are ever loaded.
    pub buffer_bytes: usize,
    /// Directory for the temporary bucket files; the system temp directory
    /// when `None`. A fresh subdirectory is created (and removed on drop).
    pub spill_dir: Option<PathBuf>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self {
            buffer_bytes: 64 << 20,
            spill_dir: None,
        }
    }
}

impl StreamOptions {
    /// Options with the given in-memory buffer bound.
    pub fn with_buffer_bytes(buffer_bytes: usize) -> Self {
        Self {
            buffer_bytes: buffer_bytes.max(PAIR_BYTES),
            ..Self::default()
        }
    }
}

const PAIR_BYTES: usize = 8;

/// Maximum simultaneously open bucket writers during the spill pass.
const MAX_BUCKETS: usize = 256;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct Bucket {
    path: PathBuf,
    /// Vertex range `[lo, hi)` this bucket covers.
    lo: VertexId,
    hi: VertexId,
    bytes: u64,
}

/// A [`VertexStream`] over temporary on-disk bucket files produced by
/// transposing an edge-major input file. Yields vertices in natural id
/// order. See [`stream_hgr_file`] / [`stream_edgelist_file`].
#[derive(Debug)]
pub struct DiskVertexStream {
    dir: PathBuf,
    buckets: Vec<Bucket>,
    num_vertices: usize,
    num_nets: usize,
    num_pins: usize,
    weights: Option<Vec<f64>>,
    // Iteration state.
    bucket_idx: usize,
    loaded: Vec<(VertexId, HyperedgeId)>,
    loaded_pos: usize,
    next_vertex: VertexId,
    peak_loaded_bytes: usize,
}

impl DiskVertexStream {
    /// Total pins of the underlying hypergraph.
    pub fn num_pins(&self) -> usize {
        self.num_pins
    }

    /// Largest number of pair bytes held in memory so far while emitting
    /// records — by construction at most `buffer_bytes` unless a single
    /// vertex's degree alone exceeds the buffer.
    pub fn peak_loaded_bytes(&self) -> usize {
        self.peak_loaded_bytes
    }

    fn spill_path(dir: &Path, lo: VertexId, hi: VertexId) -> PathBuf {
        dir.join(format!("bucket-{lo}-{hi}.bin"))
    }

    /// Builds the stream by distributing `(vertex, net)` pairs delivered by
    /// `visit` into vertex-range buckets under a fresh temp directory.
    fn build(
        options: &StreamOptions,
        num_vertices: usize,
        num_nets: usize,
        weights: Option<Vec<f64>>,
        visit: impl FnOnce(&mut dyn FnMut(VertexId, HyperedgeId) -> IoResult<()>) -> IoResult<usize>,
    ) -> IoResult<Self> {
        let base = options.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "hyperpraw-vstream-{}-{}",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        let built = Self::build_in_dir(options, num_vertices, num_nets, weights, visit, &dir);
        if built.is_err() {
            // Only a constructed stream cleans up after itself via Drop; a
            // failed build must not leak its bucket directory.
            fs::remove_dir_all(&dir).ok();
        }
        built
    }

    fn build_in_dir(
        options: &StreamOptions,
        num_vertices: usize,
        num_nets: usize,
        weights: Option<Vec<f64>>,
        visit: impl FnOnce(&mut dyn FnMut(VertexId, HyperedgeId) -> IoResult<()>) -> IoResult<usize>,
        dir: &Path,
    ) -> IoResult<Self> {
        // Initial bucket count: assume an average degree of 8 pins/vertex;
        // buckets that overflow the buffer are split after the pass, so this
        // guess only influences how much splitting happens.
        let est_bytes = num_vertices.saturating_mul(8 * PAIR_BYTES).max(1);
        let num_buckets = (est_bytes.div_ceil(options.buffer_bytes.max(PAIR_BYTES)))
            .clamp(1, MAX_BUCKETS)
            .min(num_vertices.max(1));
        let width = (num_vertices.max(1) as u64).div_ceil(num_buckets as u64) as u32;

        let mut writers: Vec<BufWriter<File>> = Vec::with_capacity(num_buckets);
        let mut buckets: Vec<Bucket> = Vec::with_capacity(num_buckets);
        for b in 0..num_buckets {
            let lo = b as u32 * width;
            let hi = ((b as u64 + 1) * u64::from(width)).min(num_vertices as u64) as u32;
            let path = Self::spill_path(dir, lo, hi);
            writers.push(BufWriter::new(File::create(&path)?));
            buckets.push(Bucket {
                path,
                lo,
                hi,
                bytes: 0,
            });
        }

        let num_pins = visit(&mut |v, e| {
            let b = (v / width) as usize;
            let w = &mut writers[b];
            w.write_all(&v.to_le_bytes())?;
            w.write_all(&e.to_le_bytes())?;
            buckets[b].bytes += PAIR_BYTES as u64;
            Ok(())
        })?;
        for w in writers {
            w.into_inner().map_err(|e| e.into_error())?.sync_all().ok();
        }

        // Split any bucket whose pair bytes exceed the load buffer.
        let mut queue = buckets;
        let mut ready = Vec::new();
        while let Some(bucket) = queue.pop() {
            let splittable = bucket.hi > bucket.lo + 1;
            if bucket.bytes as usize <= options.buffer_bytes || !splittable {
                ready.push(bucket);
                continue;
            }
            let mid = bucket.lo + (bucket.hi - bucket.lo) / 2;
            let (left, right) = split_bucket(dir, &bucket, mid)?;
            fs::remove_file(&bucket.path)?;
            queue.push(left);
            queue.push(right);
        }
        ready.sort_by_key(|b| b.lo);

        let mut stream = Self {
            dir: dir.to_path_buf(),
            buckets: ready,
            num_vertices,
            num_nets,
            num_pins,
            weights,
            bucket_idx: 0,
            loaded: Vec::new(),
            loaded_pos: 0,
            next_vertex: 0,
            peak_loaded_bytes: 0,
        };
        stream.reset()?;
        Ok(stream)
    }

    fn load_bucket(&mut self, idx: usize) -> IoResult<()> {
        let bucket = &self.buckets[idx];
        let mut file = BufReader::new(File::open(&bucket.path)?);
        self.loaded.clear();
        self.loaded.reserve((bucket.bytes as usize) / PAIR_BYTES);
        let mut buf = [0u8; PAIR_BYTES];
        loop {
            match file.read_exact(&mut buf) {
                Ok(()) => {
                    let v = VertexId::from_le_bytes(buf[0..4].try_into().unwrap());
                    let e = HyperedgeId::from_le_bytes(buf[4..8].try_into().unwrap());
                    self.loaded.push((v, e));
                }
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
        }
        self.loaded.sort_unstable();
        self.peak_loaded_bytes = self.peak_loaded_bytes.max(self.loaded.len() * PAIR_BYTES);
        self.loaded_pos = 0;
        self.next_vertex = bucket.lo;
        Ok(())
    }
}

fn split_bucket(dir: &Path, bucket: &Bucket, mid: VertexId) -> IoResult<(Bucket, Bucket)> {
    let left_path = DiskVertexStream::spill_path(dir, bucket.lo, mid);
    let right_path = DiskVertexStream::spill_path(dir, mid, bucket.hi);
    let mut left = BufWriter::new(File::create(&left_path)?);
    let mut right = BufWriter::new(File::create(&right_path)?);
    let mut reader = BufReader::new(File::open(&bucket.path)?);
    let mut buf = [0u8; PAIR_BYTES];
    let (mut left_bytes, mut right_bytes) = (0u64, 0u64);
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {
                let v = VertexId::from_le_bytes(buf[0..4].try_into().unwrap());
                if v < mid {
                    left.write_all(&buf)?;
                    left_bytes += PAIR_BYTES as u64;
                } else {
                    right.write_all(&buf)?;
                    right_bytes += PAIR_BYTES as u64;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
    }
    left.flush()?;
    right.flush()?;
    Ok((
        Bucket {
            path: left_path,
            lo: bucket.lo,
            hi: mid,
            bytes: left_bytes,
        },
        Bucket {
            path: right_path,
            lo: mid,
            hi: bucket.hi,
            bytes: right_bytes,
        },
    ))
}

impl VertexStream for DiskVertexStream {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_nets(&self) -> usize {
        self.num_nets
    }

    fn next_into(&mut self, record: &mut VertexRecord) -> IoResult<bool> {
        loop {
            if self.bucket_idx >= self.buckets.len() {
                return Ok(false);
            }
            let hi = self.buckets[self.bucket_idx].hi;
            if self.next_vertex >= hi {
                self.bucket_idx += 1;
                if self.bucket_idx < self.buckets.len() {
                    self.load_bucket(self.bucket_idx)?;
                }
                continue;
            }
            let v = self.next_vertex;
            self.next_vertex += 1;
            record.vertex = v;
            record.weight = self
                .weights
                .as_ref()
                .map_or(1.0, |w| w.get(v as usize).copied().unwrap_or(1.0));
            record.nets.clear();
            while self.loaded_pos < self.loaded.len() && self.loaded[self.loaded_pos].0 == v {
                record.nets.push(self.loaded[self.loaded_pos].1);
                self.loaded_pos += 1;
            }
            return Ok(true);
        }
    }

    fn reset(&mut self) -> IoResult<()> {
        self.bucket_idx = 0;
        self.loaded.clear();
        self.loaded_pos = 0;
        self.next_vertex = 0;
        if !self.buckets.is_empty() {
            self.load_bucket(0)?;
        }
        Ok(())
    }

    fn total_vertex_weight(&self) -> Option<f64> {
        Some(match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.num_vertices as f64,
        })
    }
}

impl Drop for DiskVertexStream {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.dir).ok();
    }
}

/// Transposes an hMETIS `.hgr` file into a [`DiskVertexStream`] with a
/// single pass over the input. Vertex weights (fmt 10/11) are preserved;
/// net weights are validated but not carried into the stream.
pub fn stream_hgr_file(
    path: impl AsRef<Path>,
    options: &StreamOptions,
) -> IoResult<DiskVertexStream> {
    // Read the header first so the pair pass can bucket by vertex range.
    let header = read_hgr_header(path.as_ref())?;
    let mut summary: Option<HgrStreamSummary> = None;
    let reader = BufReader::new(File::open(path.as_ref())?);
    let summary_ref = &mut summary;
    DiskVertexStream::build(
        options,
        header.num_vertices,
        header.num_nets,
        None,
        move |emit| {
            let s = visit_hgr_nets(reader, &mut |e, pins| {
                for &v in pins {
                    emit(v, e)?;
                }
                Ok(())
            })?;
            let pins = s.num_pins;
            *summary_ref = Some(s);
            Ok(pins)
        },
    )
    .map(|mut stream| {
        stream.weights = summary.and_then(|s| s.vertex_weights);
        stream
    })
}

/// Transposes a whitespace edge-list file into a [`DiskVertexStream`] with
/// a single pass over the input. Because the vertex count is only known at
/// the end of that pass, pairs are first spilled unbucketed and then
/// redistributed into range buckets on disk.
pub fn stream_edgelist_file(
    path: impl AsRef<Path>,
    options: &StreamOptions,
) -> IoResult<DiskVertexStream> {
    // Pass over the input: spill raw pairs, learn |V| and |E|.
    let base = options.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
    let raw_path = base.join(format!(
        "hyperpraw-vstream-raw-{}-{}.bin",
        std::process::id(),
        SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let first_pass = (|| -> IoResult<EdgeListStreamSummary> {
        let mut raw = BufWriter::new(File::create(&raw_path)?);
        let reader = BufReader::new(File::open(path.as_ref())?);
        let summary = visit_edgelist_nets(reader, &mut |e, pins| {
            for &v in pins {
                raw.write_all(&v.to_le_bytes())?;
                raw.write_all(&e.to_le_bytes())?;
            }
            Ok(())
        })?;
        raw.flush()?;
        Ok(summary)
    })();
    let summary = match first_pass {
        Ok(summary) => summary,
        Err(err) => {
            // A failed first pass must not leak the raw pair spill.
            fs::remove_file(&raw_path).ok();
            return Err(err);
        }
    };

    // Redistribute the spilled pairs into vertex-range buckets.
    let result = DiskVertexStream::build(
        options,
        summary.num_vertices,
        summary.num_nets,
        None,
        |emit| {
            let mut reader = BufReader::new(File::open(&raw_path)?);
            let mut buf = [0u8; PAIR_BYTES];
            loop {
                match reader.read_exact(&mut buf) {
                    Ok(()) => {
                        let v = VertexId::from_le_bytes(buf[0..4].try_into().unwrap());
                        let e = HyperedgeId::from_le_bytes(buf[4..8].try_into().unwrap());
                        emit(v, e)?;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    Err(e) => return Err(e.into()),
                }
            }
            Ok(summary.num_pins)
        },
    );
    fs::remove_file(&raw_path).ok();
    result
}

/// The `|E| |V|` counts from an hMETIS file's header line.
pub struct HgrHeader {
    /// Declared number of hyperedges.
    pub num_nets: usize,
    /// Declared number of vertices.
    pub num_vertices: usize,
}

/// Reads just the header line of an hMETIS file — O(1) in the file size,
/// so callers can validate a request (e.g. partition count vs. vertex
/// count) before paying for a full [`stream_hgr_file`] transpose.
pub fn read_hgr_header(path: &Path) -> IoResult<HgrHeader> {
    let reader = BufReader::new(File::open(path)?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let num_nets = parts
            .next()
            .ok_or_else(|| IoError::parse(i + 1, "missing hyperedge count"))?
            .parse()
            .map_err(|_| IoError::parse(i + 1, "invalid hyperedge count"))?;
        let num_vertices = parts
            .next()
            .ok_or_else(|| IoError::parse(i + 1, "missing vertex count"))?
            .parse()
            .map_err(|_| IoError::parse(i + 1, "invalid vertex count"))?;
        return Ok(HgrHeader {
            num_nets,
            num_vertices,
        });
    }
    Err(IoError::parse(1, "empty file: missing header"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::hmetis;
    use crate::HypergraphBuilder;
    use std::io::Cursor;

    fn sample_hg() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([0u32, 3, 4]);
        b.build()
    }

    fn collect<S: VertexStream>(stream: &mut S) -> Vec<VertexRecord> {
        let mut record = VertexRecord::default();
        let mut out = Vec::new();
        while stream.next_into(&mut record).unwrap() {
            out.push(record.clone());
        }
        out
    }

    #[test]
    fn in_memory_stream_yields_incident_nets_in_order() {
        let hg = sample_hg();
        let mut stream = InMemoryVertexStream::new(&hg);
        let records = collect(&mut stream);
        assert_eq!(records.len(), 6);
        assert_eq!(records[0].nets, vec![0, 2]);
        assert_eq!(records[2].nets, vec![0, 1]);
        assert_eq!(records[5].nets, Vec::<HyperedgeId>::new());
        // Reset rewinds.
        stream.reset().unwrap();
        assert_eq!(collect(&mut stream), records);
    }

    #[test]
    fn hgr_visitor_matches_in_memory_reader() {
        let text = "% sample\n3 6\n1 2 3\n3 4\n1 4 5\n";
        let hg = hmetis::read_hgr(Cursor::new(text)).unwrap();
        let mut nets: Vec<Vec<VertexId>> = Vec::new();
        let summary = visit_hgr_nets(Cursor::new(text), &mut |e, pins| {
            assert_eq!(e as usize, nets.len());
            nets.push(pins.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(summary.num_vertices, hg.num_vertices());
        assert_eq!(summary.num_nets, hg.num_hyperedges());
        assert_eq!(summary.num_pins, hg.num_pins());
        for e in hg.hyperedges() {
            assert_eq!(nets[e as usize], hg.pins(e));
        }
    }

    #[test]
    fn hgr_visitor_rejects_malformed_headers() {
        for (text, needle) in [
            ("", "empty file"),
            ("% only comments\n", "empty file"),
            ("3\n1 2\n", "missing vertex count"),
            ("x 5\n", "invalid hyperedge count"),
            ("2 y\n", "invalid vertex count"),
            ("1 3 zz\n1 2\n", "invalid fmt field"),
            ("2 3\n1 2\n", "expected 2 hyperedges"),
            ("1 3\n1 9\n", "out of range"),
            ("1 3\n0 2\n", "out of range"),
        ] {
            let err = visit_hgr_nets(Cursor::new(text), &mut |_, _| Ok(())).unwrap_err();
            let msg = format!("{err}");
            assert!(msg.contains(needle), "{text:?}: {msg} missing {needle:?}");
        }
    }

    #[test]
    fn duplicate_pins_within_a_net_are_dropped_like_the_in_memory_reader() {
        // "1 2 2 3" lists vertex 2 twice; the builder dedups, so the
        // streaming visitor must too or connectivity counts get inflated.
        let text = "2 4\n1 2 2 3\n4 4 4\n";
        let hg = hmetis::read_hgr(Cursor::new(text)).unwrap();
        let mut nets: Vec<Vec<VertexId>> = Vec::new();
        let summary = visit_hgr_nets(Cursor::new(text), &mut |_, pins| {
            nets.push(pins.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(summary.num_pins, hg.num_pins());
        assert_eq!(nets[0], hg.pins(0));
        assert_eq!(nets[1], hg.pins(1));
        assert_eq!(nets[1], vec![3]);

        let mut el_nets: Vec<Vec<VertexId>> = Vec::new();
        let el = visit_edgelist_nets(Cursor::new("0 1 1 2\n3 3\n"), &mut |_, pins| {
            el_nets.push(pins.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(el.num_pins, 4);
        assert_eq!(el_nets, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn hgr_ids_are_one_based_but_stream_is_zero_based() {
        let text = "1 3\n1 3\n";
        let mut seen = Vec::new();
        visit_hgr_nets(Cursor::new(text), &mut |_, pins| {
            seen.extend_from_slice(pins);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn disk_stream_agrees_with_in_memory_stream_on_hgr_round_trip() {
        let hg = sample_hg();
        let path =
            std::env::temp_dir().join(format!("hyperpraw_stream_rt_{}.hgr", std::process::id()));
        hmetis::write_hgr_file(&hg, &path).unwrap();

        let mut disk = stream_hgr_file(&path, &StreamOptions::default()).unwrap();
        let mut mem = InMemoryVertexStream::new(&hg);
        assert_eq!(collect(&mut disk), collect(&mut mem));
        assert_eq!(disk.num_vertices(), hg.num_vertices());
        assert_eq!(disk.num_nets(), hg.num_hyperedges());
        assert_eq!(disk.num_pins(), hg.num_pins());

        // A second pass yields the same records.
        disk.reset().unwrap();
        mem.reset().unwrap();
        assert_eq!(collect(&mut disk), collect(&mut mem));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_stream_preserves_vertex_weights() {
        let text = "1 3 10\n1 2 3\n5\n1\n2\n";
        let path =
            std::env::temp_dir().join(format!("hyperpraw_stream_w_{}.hgr", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let mut stream = stream_hgr_file(&path, &StreamOptions::default()).unwrap();
        let records = collect(&mut stream);
        assert_eq!(records[0].weight, 5.0);
        assert_eq!(records[1].weight, 1.0);
        assert_eq!(records[2].weight, 2.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_buffer_splits_buckets_and_bounds_peak_memory() {
        // 40 vertices in a ring of pair nets: 80 pins = 640 pair bytes.
        let mut b = HypergraphBuilder::new(40);
        for v in 0..40u32 {
            b.add_hyperedge([v, (v + 1) % 40]);
        }
        let hg = b.build();
        let path =
            std::env::temp_dir().join(format!("hyperpraw_stream_split_{}.hgr", std::process::id()));
        hmetis::write_hgr_file(&hg, &path).unwrap();

        let options = StreamOptions::with_buffer_bytes(64);
        let mut disk = stream_hgr_file(&path, &options).unwrap();
        let records = collect(&mut disk);
        assert_eq!(records.len(), 40);
        assert!(records.iter().all(|r| r.nets.len() == 2));
        assert!(
            disk.peak_loaded_bytes() <= 64,
            "peak {} exceeds the 64-byte buffer",
            disk.peak_loaded_bytes()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_streams_leave_no_spill_files_behind() {
        let spill =
            std::env::temp_dir().join(format!("hyperpraw-spill-leak-test-{}", std::process::id()));
        std::fs::create_dir_all(&spill).unwrap();
        let options = StreamOptions {
            buffer_bytes: 1 << 10,
            spill_dir: Some(spill.clone()),
        };

        // hMETIS input whose body contradicts the header: the error fires
        // inside DiskVertexStream::build, after the bucket dir exists.
        let bad_hgr = std::env::temp_dir().join(format!("bad-{}.hgr", std::process::id()));
        std::fs::write(&bad_hgr, "5 4\n1 2\n").unwrap();
        assert!(stream_hgr_file(&bad_hgr, &options).is_err());

        // Edge list that fails to parse during the raw spill pass.
        let bad_el = std::env::temp_dir().join(format!("bad-{}.txt", std::process::id()));
        std::fs::write(&bad_el, "0 1\n2 x\n").unwrap();
        assert!(stream_edgelist_file(&bad_el, &options).is_err());

        let leftovers: Vec<_> = std::fs::read_dir(&spill).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "failed streams leaked {} spill entries",
            leftovers.len()
        );

        std::fs::remove_file(&bad_hgr).ok();
        std::fs::remove_file(&bad_el).ok();
        std::fs::remove_dir_all(&spill).ok();
    }

    #[test]
    fn edgelist_stream_matches_visitor_and_emits_isolated_vertices() {
        let text = "# c\n0 1 2\n2 4\n";
        let path =
            std::env::temp_dir().join(format!("hyperpraw_stream_el_{}.txt", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let mut stream = stream_edgelist_file(&path, &StreamOptions::default()).unwrap();
        let records = collect(&mut stream);
        // Vertex 3 never appears in a net but is below the max id: it must
        // still be yielded (as isolated) so ids stay dense.
        assert_eq!(records.len(), 5);
        assert_eq!(records[0].nets, vec![0]);
        assert_eq!(records[2].nets, vec![0, 1]);
        assert_eq!(records[3].nets, Vec::<HyperedgeId>::new());
        assert_eq!(records[4].nets, vec![1]);
        assert_eq!(stream.num_nets(), 2);
        std::fs::remove_file(&path).ok();
    }
}
