//! MatrixMarket `.mtx` coordinate reader and hypergraph models for sparse
//! matrices.
//!
//! Most of the paper's benchmark instances are SuiteSparse matrices. A sparse
//! matrix `A` maps to a hypergraph by the **row-net** model (vertices =
//! columns, one hyperedge per row spanning the columns with a nonzero in that
//! row) or the **column-net** model (transposed roles). For structurally
//! symmetric matrices the two coincide, which is why Table 1 lists equal
//! vertex and hyperedge counts for the FEM instances.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::io::{IoError, IoResult};
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// How to turn a sparse matrix into a hypergraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseMatrixModel {
    /// Vertices are columns; one hyperedge per row (Catalyurek & Aykanat's
    /// 1-D row-wise decomposition model).
    RowNet,
    /// Vertices are rows; one hyperedge per column.
    ColumnNet,
}

/// A sparse matrix in coordinate form, as read from a `.mtx` file.
#[derive(Clone, Debug, PartialEq)]
pub struct CoordinateMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Nonzero entries `(row, col)` (0-based, duplicates removed, symmetric
    /// part expanded when the header declares `symmetric`).
    pub entries: Vec<(u32, u32)>,
}

impl CoordinateMatrix {
    /// Converts the matrix to a hypergraph under the given model.
    pub fn to_hypergraph(&self, model: SparseMatrixModel, name: &str) -> Hypergraph {
        type EntryKey = fn(&(u32, u32)) -> (u32, u32);
        let (num_vertices, num_nets, key): (usize, usize, EntryKey) = match model {
            SparseMatrixModel::RowNet => (self.cols, self.rows, |&(r, c)| (r, c)),
            SparseMatrixModel::ColumnNet => (self.rows, self.cols, |&(r, c)| (c, r)),
        };
        let mut nets: Vec<Vec<VertexId>> = vec![Vec::new(); num_nets];
        for entry in &self.entries {
            let (net, pin) = key(entry);
            nets[net as usize].push(pin as VertexId);
        }
        let mut builder = HypergraphBuilder::with_capacity(num_vertices, num_nets);
        builder.name(name.to_string());
        for net in nets {
            if !net.is_empty() {
                builder.add_hyperedge(net);
            }
        }
        builder.ensure_vertices(num_vertices);
        builder.build()
    }
}

/// Reads a MatrixMarket coordinate file.
pub fn read_mtx<R: BufRead>(reader: R) -> IoResult<CoordinateMatrix> {
    let mut lines = reader.lines().enumerate();

    // Header: "%%MatrixMarket matrix coordinate <field> <symmetry>".
    let (first_no, first) = match lines.next() {
        Some((i, line)) => (i + 1, line?),
        None => return Err(IoError::parse(1, "empty file")),
    };
    let header = first.trim().to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(IoError::parse(first_no, "missing %%MatrixMarket header"));
    }
    if !header.contains("coordinate") {
        return Err(IoError::parse(
            first_no,
            "only coordinate (sparse) matrices are supported",
        ));
    }
    let symmetric = header.contains("symmetric")
        || header.contains("hermitian")
        || header.contains("skew-symmetric");
    let pattern = header.contains("pattern");

    // Size line (after comments).
    let (size_no, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, t.to_string());
            }
            None => return Err(IoError::parse(first_no, "missing size line")),
        }
    };
    let mut toks = size_line.split_whitespace();
    let rows: usize = toks
        .next()
        .ok_or_else(|| IoError::parse(size_no, "missing row count"))?
        .parse()
        .map_err(|_| IoError::parse(size_no, "invalid row count"))?;
    let cols: usize = toks
        .next()
        .ok_or_else(|| IoError::parse(size_no, "missing column count"))?
        .parse()
        .map_err(|_| IoError::parse(size_no, "invalid column count"))?;
    let nnz: usize = toks
        .next()
        .ok_or_else(|| IoError::parse(size_no, "missing nonzero count"))?
        .parse()
        .map_err(|_| IoError::parse(size_no, "invalid nonzero count"))?;

    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(if symmetric { nnz * 2 } else { nnz });
    let mut read = 0usize;
    for (i, line) in lines {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let r: usize = toks
            .next()
            .ok_or_else(|| IoError::parse(line_no, "missing row index"))?
            .parse()
            .map_err(|_| IoError::parse(line_no, "invalid row index"))?;
        let c: usize = toks
            .next()
            .ok_or_else(|| IoError::parse(line_no, "missing column index"))?
            .parse()
            .map_err(|_| IoError::parse(line_no, "invalid column index"))?;
        if !pattern && toks.next().is_none() {
            return Err(IoError::parse(line_no, "missing value field"));
        }
        if r == 0 || r > rows || c == 0 || c > cols {
            return Err(IoError::parse(line_no, "entry index out of range"));
        }
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        entries.push((r0, c0));
        if symmetric && r0 != c0 {
            entries.push((c0, r0));
        }
        read += 1;
    }
    if read != nnz {
        return Err(IoError::parse(
            size_no,
            format!("expected {nnz} entries, found {read}"),
        ));
    }
    entries.sort_unstable();
    entries.dedup();
    Ok(CoordinateMatrix {
        rows,
        cols,
        entries,
    })
}

/// Reads a `.mtx` file and converts it to a hypergraph under `model`,
/// naming the hypergraph after the file stem.
pub fn read_mtx_file(path: impl AsRef<Path>, model: SparseMatrixModel) -> IoResult<Hypergraph> {
    let path = path.as_ref();
    let matrix = read_mtx(BufReader::new(File::open(path)?))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("matrix");
    Ok(matrix.to_hypergraph(model, name))
}

/// Writes a coordinate matrix as a (pattern, general) MatrixMarket file.
pub fn write_mtx<W: Write>(matrix: &CoordinateMatrix, mut writer: W) -> IoResult<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows,
        matrix.cols,
        matrix.entries.len()
    )?;
    for &(r, c) in &matrix.entries {
        writeln!(writer, "{} {}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Writes a coordinate matrix to a file path.
pub fn write_mtx_file(matrix: &CoordinateMatrix, path: impl AsRef<Path>) -> IoResult<()> {
    write_mtx(matrix, BufWriter::new(File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % comment\n\
        3 4 5\n\
        1 1 1.0\n\
        1 3 2.0\n\
        2 2 0.5\n\
        3 1 1.5\n\
        3 4 -1.0\n";

    #[test]
    fn reads_general_matrix() {
        let m = read_mtx(Cursor::new(GENERAL)).unwrap();
        assert_eq!(m.rows, 3);
        assert_eq!(m.cols, 4);
        assert_eq!(m.entries.len(), 5);
        assert!(m.entries.contains(&(0, 2)));
    }

    #[test]
    fn symmetric_matrices_are_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
            3 3 3\n\
            1 1 1.0\n\
            2 1 2.0\n\
            3 2 3.0\n";
        let m = read_mtx(Cursor::new(text)).unwrap();
        // Diagonal kept once, off-diagonals mirrored.
        assert_eq!(m.entries.len(), 5);
        assert!(m.entries.contains(&(0, 1)));
        assert!(m.entries.contains(&(1, 0)));
    }

    #[test]
    fn pattern_matrices_need_no_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(m.entries.len(), 2);
    }

    #[test]
    fn row_net_model_builds_expected_hyperedges() {
        let m = read_mtx(Cursor::new(GENERAL)).unwrap();
        let hg = m.to_hypergraph(SparseMatrixModel::RowNet, "general");
        // Vertices = columns (4), hyperedges = non-empty rows (3).
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_hyperedges(), 3);
        assert_eq!(hg.pins(0), &[0, 2]); // row 1 -> cols {1,3}
        assert_eq!(hg.pins(2), &[0, 3]); // row 3 -> cols {1,4}
    }

    #[test]
    fn column_net_model_transposes_roles() {
        let m = read_mtx(Cursor::new(GENERAL)).unwrap();
        let hg = m.to_hypergraph(SparseMatrixModel::ColumnNet, "general");
        assert_eq!(hg.num_vertices(), 3);
        // Column 3 (0-based 2) has a single entry; columns with entries: 1,2,3,4.
        assert_eq!(hg.num_hyperedges(), 4);
    }

    #[test]
    fn rejects_wrong_header() {
        let err = read_mtx(Cursor::new("not a matrix\n1 1 0\n")).unwrap_err();
        assert!(format!("{err}").contains("MatrixMarket"));
    }

    #[test]
    fn rejects_out_of_range_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = read_mtx(Cursor::new(text)).unwrap_err();
        assert!(format!("{err}").contains("out of range"));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        let err = read_mtx(Cursor::new(text)).unwrap_err();
        assert!(format!("{err}").contains("expected 3 entries"));
    }

    #[test]
    fn write_then_read_round_trips() {
        let m = read_mtx(Cursor::new(GENERAL)).unwrap();
        let mut buf = Vec::new();
        write_mtx(&m, &mut buf).unwrap();
        let back = read_mtx(Cursor::new(buf)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn symmetric_row_and_column_nets_coincide() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
            4 4 5\n\
            1 1 1.0\n\
            2 1 1.0\n\
            3 2 1.0\n\
            4 3 1.0\n\
            4 4 1.0\n";
        let m = read_mtx(Cursor::new(text)).unwrap();
        let a = m.to_hypergraph(SparseMatrixModel::RowNet, "s");
        let b = m.to_hypergraph(SparseMatrixModel::ColumnNet, "s");
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_hyperedges(), b.num_hyperedges());
        for e in a.hyperedges() {
            assert_eq!(a.pins(e), b.pins(e));
        }
    }
}
