//! hMetis `.hgr` format reader/writer.
//!
//! Format (as used by hMetis, PaToH converters and KaHyPar, and by the
//! benchmark set the paper draws from):
//!
//! ```text
//! % comment lines start with '%'
//! <num_hyperedges> <num_vertices> [fmt]
//! [edge_weight] v1 v2 v3 ...      (one line per hyperedge, 1-based ids)
//! ...
//! [vertex_weight]                 (one line per vertex, if fmt has weights)
//! ```
//!
//! `fmt` is omitted or one of `1` (hyperedge weights), `10` (vertex weights)
//! or `11` (both).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::io::{IoError, IoResult};
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Reads a hypergraph in hMetis format from a buffered reader.
pub fn read_hgr<R: BufRead>(reader: R) -> IoResult<Hypergraph> {
    let mut lines = reader.lines().enumerate();

    // Find the header (skipping comments and blank lines).
    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i + 1, trimmed.to_string());
            }
            None => return Err(IoError::parse(1, "empty file: missing header")),
        }
    };

    let mut parts = header.split_whitespace();
    let num_edges: usize = parts
        .next()
        .ok_or_else(|| IoError::parse(header_line_no, "missing hyperedge count"))?
        .parse()
        .map_err(|_| IoError::parse(header_line_no, "invalid hyperedge count"))?;
    let num_vertices: usize = parts
        .next()
        .ok_or_else(|| IoError::parse(header_line_no, "missing vertex count"))?
        .parse()
        .map_err(|_| IoError::parse(header_line_no, "invalid vertex count"))?;
    let fmt: u32 = match parts.next() {
        Some(tok) => tok
            .parse()
            .map_err(|_| IoError::parse(header_line_no, "invalid fmt field"))?,
        None => 0,
    };
    let has_edge_weights = fmt == 1 || fmt == 11;
    let has_vertex_weights = fmt == 10 || fmt == 11;

    let mut builder = HypergraphBuilder::with_capacity(num_vertices, num_edges);
    let mut edges_read = 0usize;
    let mut vertex_weights_read = 0usize;

    for (i, line) in lines {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if edges_read < num_edges {
            let mut tokens = trimmed.split_whitespace();
            let weight = if has_edge_weights {
                let w: f64 = tokens
                    .next()
                    .ok_or_else(|| IoError::parse(line_no, "missing hyperedge weight"))?
                    .parse()
                    .map_err(|_| IoError::parse(line_no, "invalid hyperedge weight"))?;
                w
            } else {
                1.0
            };
            let mut pins: Vec<VertexId> = Vec::new();
            for tok in tokens {
                let v: usize = tok
                    .parse()
                    .map_err(|_| IoError::parse(line_no, format!("invalid vertex id '{tok}'")))?;
                if v == 0 || v > num_vertices {
                    return Err(IoError::parse(
                        line_no,
                        format!("vertex id {v} out of range 1..={num_vertices}"),
                    ));
                }
                pins.push((v - 1) as VertexId);
            }
            if pins.is_empty() {
                return Err(IoError::parse(line_no, "hyperedge with no pins"));
            }
            builder.add_weighted_hyperedge(pins, weight);
            edges_read += 1;
        } else if has_vertex_weights && vertex_weights_read < num_vertices {
            let w: f64 = trimmed
                .parse()
                .map_err(|_| IoError::parse(line_no, "invalid vertex weight"))?;
            builder.set_vertex_weight(vertex_weights_read as VertexId, w);
            vertex_weights_read += 1;
        } else {
            return Err(IoError::parse(line_no, "unexpected extra data"));
        }
    }

    if edges_read != num_edges {
        return Err(IoError::parse(
            header_line_no,
            format!("expected {num_edges} hyperedges, found {edges_read}"),
        ));
    }
    if has_vertex_weights && vertex_weights_read != num_vertices {
        return Err(IoError::parse(
            header_line_no,
            format!("expected {num_vertices} vertex weights, found {vertex_weights_read}"),
        ));
    }
    builder.ensure_vertices(num_vertices);
    Ok(builder.build())
}

/// Reads a hypergraph in hMetis format from a file path. The file stem is
/// used as the hypergraph name.
pub fn read_hgr_file(path: impl AsRef<Path>) -> IoResult<Hypergraph> {
    let path = path.as_ref();
    let file = File::open(path)?;
    let mut hg = read_hgr(BufReader::new(file))?;
    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
        hg.set_name(stem);
    }
    Ok(hg)
}

/// Writes a hypergraph in hMetis format. Hyperedge weights are emitted only
/// when at least one differs from 1.0; likewise for vertex weights.
pub fn write_hgr<W: Write>(hg: &Hypergraph, mut writer: W) -> IoResult<()> {
    let has_edge_weights = hg.hyperedges().any(|e| hg.edge_weight(e) != 1.0);
    let has_vertex_weights = hg.vertices().any(|v| hg.vertex_weight(v) != 1.0);
    let fmt = match (has_edge_weights, has_vertex_weights) {
        (false, false) => None,
        (true, false) => Some(1),
        (false, true) => Some(10),
        (true, true) => Some(11),
    };
    writeln!(writer, "% {}", hg.name())?;
    match fmt {
        Some(f) => writeln!(
            writer,
            "{} {} {}",
            hg.num_hyperedges(),
            hg.num_vertices(),
            f
        )?,
        None => writeln!(writer, "{} {}", hg.num_hyperedges(), hg.num_vertices())?,
    }
    for e in hg.hyperedges() {
        let mut line = String::new();
        if has_edge_weights {
            line.push_str(&format!("{} ", hg.edge_weight(e)));
        }
        let pins: Vec<String> = hg.pins(e).iter().map(|&v| (v + 1).to_string()).collect();
        line.push_str(&pins.join(" "));
        writeln!(writer, "{line}")?;
    }
    if has_vertex_weights {
        for v in hg.vertices() {
            writeln!(writer, "{}", hg.vertex_weight(v))?;
        }
    }
    Ok(())
}

/// Writes a hypergraph in hMetis format to a file path.
pub fn write_hgr_file(hg: &Hypergraph, path: impl AsRef<Path>) -> IoResult<()> {
    let file = File::create(path)?;
    write_hgr(hg, BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_unweighted_file() {
        let text = "% a comment\n3 5\n1 2 3\n3 4\n1 4 5\n";
        let hg = read_hgr(Cursor::new(text)).unwrap();
        assert_eq!(hg.num_vertices(), 5);
        assert_eq!(hg.num_hyperedges(), 3);
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.pins(2), &[0, 3, 4]);
        hg.validate().unwrap();
    }

    #[test]
    fn reads_edge_weights() {
        let text = "2 3 1\n2.5 1 2\n1.0 2 3\n";
        let hg = read_hgr(Cursor::new(text)).unwrap();
        assert_eq!(hg.edge_weight(0), 2.5);
        assert_eq!(hg.edge_weight(1), 1.0);
    }

    #[test]
    fn reads_vertex_weights() {
        let text = "1 3 10\n1 2 3\n5\n1\n2\n";
        let hg = read_hgr(Cursor::new(text)).unwrap();
        assert_eq!(hg.vertex_weight(0), 5.0);
        assert_eq!(hg.vertex_weight(2), 2.0);
    }

    #[test]
    fn reads_both_weights() {
        let text = "1 2 11\n4 1 2\n3\n7\n";
        let hg = read_hgr(Cursor::new(text)).unwrap();
        assert_eq!(hg.edge_weight(0), 4.0);
        assert_eq!(hg.vertex_weight(1), 7.0);
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let text = "1 3\n1 4\n";
        let err = read_hgr(Cursor::new(text)).unwrap_err();
        assert!(format!("{err}").contains("out of range"));
    }

    #[test]
    fn rejects_missing_edges() {
        let text = "3 3\n1 2\n";
        let err = read_hgr(Cursor::new(text)).unwrap_err();
        assert!(format!("{err}").contains("expected 3 hyperedges"));
    }

    #[test]
    fn rejects_empty_file() {
        let err = read_hgr(Cursor::new("")).unwrap_err();
        assert!(format!("{err}").contains("empty file"));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut b = crate::HypergraphBuilder::new(6);
        b.name("roundtrip");
        b.add_hyperedge([0u32, 1, 2]);
        b.add_weighted_hyperedge([3u32, 4, 5], 2.0);
        b.set_vertex_weight(5, 3.0);
        let hg = b.build();

        let mut buf = Vec::new();
        write_hgr(&hg, &mut buf).unwrap();
        let read_back = read_hgr(Cursor::new(buf)).unwrap();
        assert_eq!(read_back.num_vertices(), hg.num_vertices());
        assert_eq!(read_back.num_hyperedges(), hg.num_hyperedges());
        for e in hg.hyperedges() {
            assert_eq!(read_back.pins(e), hg.pins(e));
            assert_eq!(read_back.edge_weight(e), hg.edge_weight(e));
        }
        for v in hg.vertices() {
            assert_eq!(read_back.vertex_weight(v), hg.vertex_weight(v));
        }
    }

    #[test]
    fn file_round_trip_uses_stem_as_name() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hyperpraw_hgr_test_{}.hgr", std::process::id()));
        let mut b = crate::HypergraphBuilder::new(3);
        b.add_hyperedge([0u32, 1, 2]);
        let hg = b.build();
        write_hgr_file(&hg, &path).unwrap();
        let read_back = read_hgr_file(&path).unwrap();
        assert!(read_back.name().starts_with("hyperpraw_hgr_test_"));
        assert_eq!(read_back.num_hyperedges(), 1);
        std::fs::remove_file(&path).ok();
    }
}
