//! Reading and writing hypergraphs in common on-disk formats.
//!
//! * [`hmetis`] — the hMetis / PaToH / KaHyPar `.hgr` text format used by the
//!   paper's benchmark collection,
//! * [`matrix_market`] — MatrixMarket `.mtx` coordinate files (SuiteSparse
//!   matrices), converted with the row-net or column-net model,
//! * [`edgelist`] — a trivial one-hyperedge-per-line format used by the
//!   examples,
//! * [`stream`] — out-of-core streaming access: edge-major per-net visitors
//!   and vertex-major [`stream::VertexStream`] readers that never
//!   materialise the CSR structure (the substrate of `hyperpraw-lowmem`).
//!
//! All readers are generic over [`std::io::BufRead`] so tests can use
//! in-memory cursors, with `*_file` convenience wrappers for paths.

use std::fmt;
use std::io;

pub mod edgelist;
pub mod hmetis;
pub mod matrix_market;
pub mod stream;

/// Errors arising while reading a hypergraph file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file contents could not be parsed.
    Parse {
        /// 1-based line number where the problem was found.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl IoError {
    /// A parse error at a 1-based line number (0 when no line applies).
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        Self::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Result alias for hypergraph IO.
pub type IoResult<T> = Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_line() {
        let e = IoError::parse(7, "bad token");
        let s = format!("{e}");
        assert!(s.contains("line 7"));
        assert!(s.contains("bad token"));
    }

    #[test]
    fn io_error_wraps_source() {
        let e: IoError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(format!("{e}").contains("missing"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
