//! Reading and writing hypergraphs in common on-disk formats.
//!
//! * [`hmetis`] — the hMetis / PaToH / KaHyPar `.hgr` text format used by the
//!   paper's benchmark collection,
//! * [`matrix_market`] — MatrixMarket `.mtx` coordinate files (SuiteSparse
//!   matrices), converted with the row-net or column-net model,
//! * [`edgelist`] — a trivial one-hyperedge-per-line format used by the
//!   examples,
//! * [`stream`] — out-of-core streaming access: edge-major per-net visitors
//!   and vertex-major [`stream::VertexStream`] readers that never
//!   materialise the CSR structure (the substrate of `hyperpraw-lowmem`).
//!
//! All readers are generic over [`std::io::BufRead`] so tests can use
//! in-memory cursors, with `*_file` convenience wrappers for paths.
//!
//! # Beyond text formats: the block-compressed CSR
//!
//! [`stream::VertexStream`] is deliberately the *only* contract the
//! streaming engines know about, so vertex records can come from more than
//! a local text transpose. The `hyperpraw-storage` crate implements the
//! other end of that contract: a block-compressed vertex-major CSR file
//! format (`.hpz`, delta-varint pin lists in independently decodable
//! fixed-target-size blocks behind a footer index — the full byte-level
//! layout diagram lives in that crate's docs), read through a pluggable
//! `ByteSource` trait (anything offering ranged byte reads: a local file,
//! an in-memory buffer, a chunk-granular caching wrapper) and surfaced
//! back here as a `VertexStream`. Its prefetching mode decodes block
//! `N + 1` on a background thread into a double buffer while the consumer
//! drains block `N`, and honours this module's reset contract: after
//! [`stream::VertexStream::reset`] the stream restarts at vertex 0 and
//! yields the identical record sequence, so multi-pass restreaming and
//! BSP drivers work unchanged over compressed files.

use std::fmt;
use std::io;

pub mod edgelist;
pub mod hmetis;
pub mod matrix_market;
pub mod stream;

/// Errors arising while reading a hypergraph file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file contents could not be parsed.
    Parse {
        /// 1-based line number where the problem was found.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl IoError {
    /// A parse error at a 1-based line number (0 when no line applies).
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        Self::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Result alias for hypergraph IO.
pub type IoResult<T> = Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_line() {
        let e = IoError::parse(7, "bad token");
        let s = format!("{e}");
        assert!(s.contains("line 7"));
        assert!(s.contains("bad token"));
    }

    #[test]
    fn io_error_wraps_source() {
        let e: IoError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(format!("{e}").contains("missing"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
