//! A minimal whitespace-separated hyperedge-list format.
//!
//! One hyperedge per line, 0-based vertex ids, `#` comments. Used by the
//! examples and handy for quick experiments:
//!
//! ```text
//! # three hyperedges over five vertices
//! 0 1 2
//! 2 3
//! 0 3 4
//! ```

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::io::{IoError, IoResult};
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Reads an edge-list hypergraph from a buffered reader.
pub fn read_edgelist<R: BufRead>(reader: R) -> IoResult<Hypergraph> {
    let mut builder = HypergraphBuilder::new(0);
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut pins: Vec<VertexId> = Vec::new();
        for tok in t.split_whitespace() {
            let v: VertexId = tok
                .parse()
                .map_err(|_| IoError::parse(line_no, format!("invalid vertex id '{tok}'")))?;
            pins.push(v);
        }
        builder.add_hyperedge(pins);
    }
    Ok(builder.build())
}

/// Reads an edge-list hypergraph from a file, naming it after the file stem.
pub fn read_edgelist_file(path: impl AsRef<Path>) -> IoResult<Hypergraph> {
    let path = path.as_ref();
    let mut hg = read_edgelist(BufReader::new(File::open(path)?))?;
    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
        hg.set_name(stem);
    }
    Ok(hg)
}

/// Writes a hypergraph as an edge list (weights are not preserved).
pub fn write_edgelist<W: Write>(hg: &Hypergraph, mut writer: W) -> IoResult<()> {
    writeln!(writer, "# {} ({} vertices)", hg.name(), hg.num_vertices())?;
    for e in hg.hyperedges() {
        let pins: Vec<String> = hg.pins(e).iter().map(|v| v.to_string()).collect();
        writeln!(writer, "{}", pins.join(" "))?;
    }
    Ok(())
}

/// Writes a hypergraph as an edge list to a file path.
pub fn write_edgelist_file(hg: &Hypergraph, path: impl AsRef<Path>) -> IoResult<()> {
    write_edgelist(hg, BufWriter::new(File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_simple_file() {
        let text = "# comment\n0 1 2\n2 3\n\n0 3 4\n";
        let hg = read_edgelist(Cursor::new(text)).unwrap();
        assert_eq!(hg.num_vertices(), 5);
        assert_eq!(hg.num_hyperedges(), 3);
        assert_eq!(hg.pins(1), &[2, 3]);
    }

    #[test]
    fn rejects_non_numeric_ids() {
        let err = read_edgelist(Cursor::new("0 x 2\n")).unwrap_err();
        assert!(format!("{err}").contains("invalid vertex id"));
    }

    #[test]
    fn round_trips_through_memory() {
        let mut b = HypergraphBuilder::new(4);
        b.name("rt");
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([1u32, 2, 3]);
        let hg = b.build();
        let mut buf = Vec::new();
        write_edgelist(&hg, &mut buf).unwrap();
        let back = read_edgelist(Cursor::new(buf)).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert_eq!(back.num_hyperedges(), 2);
        assert_eq!(back.pins(1), hg.pins(1));
    }

    #[test]
    fn empty_input_builds_empty_hypergraph() {
        let hg = read_edgelist(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(hg.num_vertices(), 0);
        assert_eq!(hg.num_hyperedges(), 0);
    }
}
