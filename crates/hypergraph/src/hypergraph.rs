//! The compressed, immutable hypergraph representation.

use std::fmt;

/// Identifier of a vertex. Vertices are dense indices `0..num_vertices()`.
pub type VertexId = u32;

/// Identifier of a hyperedge. Hyperedges are dense indices
/// `0..num_hyperedges()`.
pub type HyperedgeId = u32;

/// An immutable hypergraph stored in compressed sparse form in both
/// directions.
///
/// * *pins*: for every hyperedge, the list of vertices it contains
///   (`edge_offsets` / `edge_pins`),
/// * *incidence*: for every vertex, the list of hyperedges it belongs to
///   (`vertex_offsets` / `vertex_edges`).
///
/// Both directions are kept because streaming partitioners iterate over the
/// incident hyperedges of a vertex (to find its neighbours), while cut
/// metrics and the synthetic benchmark iterate over the pins of a hyperedge.
///
/// Vertices and hyperedges carry `f64` weights. The paper assumes unit
/// vertex weights (one unit of work per vertex) and unit hyperedge weights
/// (symmetric communication); both generalisations are supported here
/// because they are required by the paper's "future work" extensions
/// (weighted hyperedges for asymmetric communication volumes).
#[derive(Clone, PartialEq)]
pub struct Hypergraph {
    name: String,
    // Hyperedge -> pins (CSR).
    edge_offsets: Vec<usize>,
    edge_pins: Vec<VertexId>,
    // Vertex -> incident hyperedges (CSR).
    vertex_offsets: Vec<usize>,
    vertex_edges: Vec<HyperedgeId>,
    vertex_weights: Vec<f64>,
    edge_weights: Vec<f64>,
}

impl Hypergraph {
    /// Builds a hypergraph directly from its parts. Intended for use by
    /// [`crate::HypergraphBuilder`]; prefer the builder in user code.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the CSR arrays are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        edge_offsets: Vec<usize>,
        edge_pins: Vec<VertexId>,
        vertex_offsets: Vec<usize>,
        vertex_edges: Vec<HyperedgeId>,
        vertex_weights: Vec<f64>,
        edge_weights: Vec<f64>,
    ) -> Self {
        let hg = Self {
            name,
            edge_offsets,
            edge_pins,
            vertex_offsets,
            vertex_edges,
            vertex_weights,
            edge_weights,
        };
        debug_assert!(hg.validate().is_ok(), "inconsistent hypergraph CSR");
        hg
    }

    /// The (human readable) name of this hypergraph instance, e.g.
    /// `"sparsine"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the hypergraph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.vertex_offsets.len() - 1
    }

    /// Number of hyperedges `|E|`.
    pub fn num_hyperedges(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Total number of pins (sum of hyperedge cardinalities), i.e. the number
    /// of nonzeros when the hypergraph is viewed as a sparse matrix.
    pub fn num_pins(&self) -> usize {
        self.edge_pins.len()
    }

    /// The vertices contained in hyperedge `e` (its *pins*), sorted by id.
    pub fn pins(&self, e: HyperedgeId) -> &[VertexId] {
        let e = e as usize;
        &self.edge_pins[self.edge_offsets[e]..self.edge_offsets[e + 1]]
    }

    /// The hyperedges incident to vertex `v`, sorted by id.
    pub fn incident_edges(&self, v: VertexId) -> &[HyperedgeId] {
        let v = v as usize;
        &self.vertex_edges[self.vertex_offsets[v]..self.vertex_offsets[v + 1]]
    }

    /// Cardinality of hyperedge `e` (number of pins).
    pub fn cardinality(&self, e: HyperedgeId) -> usize {
        self.pins(e).len()
    }

    /// Degree of vertex `v` (number of incident hyperedges).
    pub fn degree(&self, v: VertexId) -> usize {
        self.incident_edges(v).len()
    }

    /// Weight of vertex `v` (defaults to `1.0` when built without weights).
    pub fn vertex_weight(&self, v: VertexId) -> f64 {
        self.vertex_weights[v as usize]
    }

    /// Weight of hyperedge `e` (defaults to `1.0` when built without
    /// weights).
    pub fn edge_weight(&self, e: HyperedgeId) -> f64 {
        self.edge_weights[e as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vertex_weights.iter().sum()
    }

    /// Sum of all hyperedge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.edge_weights.iter().sum()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(|v| v as VertexId)
    }

    /// Iterator over all hyperedge ids.
    pub fn hyperedges(&self) -> impl Iterator<Item = HyperedgeId> + '_ {
        (0..self.num_hyperedges() as u32).map(|e| e as HyperedgeId)
    }

    /// Iterator over `(hyperedge, pins)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (HyperedgeId, &[VertexId])> + '_ {
        self.hyperedges().map(move |e| (e, self.pins(e)))
    }

    /// Largest hyperedge cardinality, or 0 for an edge-less hypergraph.
    pub fn max_cardinality(&self) -> usize {
        self.hyperedges()
            .map(|e| self.cardinality(e))
            .max()
            .unwrap_or(0)
    }

    /// Mean hyperedge cardinality, or 0 for an edge-less hypergraph.
    pub fn avg_cardinality(&self) -> f64 {
        if self.num_hyperedges() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_hyperedges() as f64
        }
    }

    /// Largest vertex degree, or 0 for an empty hypergraph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Mean vertex degree, or 0 for an empty hypergraph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_vertices() as f64
        }
    }

    /// Checks structural consistency of the CSR arrays: monotone offsets,
    /// in-range ids, matching pin counts in both directions, and per-edge /
    /// per-vertex sorted adjacency. Returns a description of the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.edge_offsets.is_empty() || self.vertex_offsets.is_empty() {
            return Err("offset arrays must contain at least one entry".into());
        }
        if *self.edge_offsets.last().unwrap() != self.edge_pins.len() {
            return Err("edge_offsets do not cover edge_pins".into());
        }
        if *self.vertex_offsets.last().unwrap() != self.vertex_edges.len() {
            return Err("vertex_offsets do not cover vertex_edges".into());
        }
        if self.vertex_weights.len() != self.num_vertices() {
            return Err("vertex_weights length mismatch".into());
        }
        if self.edge_weights.len() != self.num_hyperedges() {
            return Err("edge_weights length mismatch".into());
        }
        if self.edge_pins.len() != self.vertex_edges.len() {
            return Err("pin count differs between the two CSR directions".into());
        }
        for w in self.edge_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("edge_offsets not monotone".into());
            }
        }
        for w in self.vertex_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("vertex_offsets not monotone".into());
            }
        }
        let nv = self.num_vertices() as u32;
        let ne = self.num_hyperedges() as u32;
        for e in self.hyperedges() {
            let pins = self.pins(e);
            for w in pins.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("pins of hyperedge {e} not strictly sorted"));
                }
            }
            if pins.iter().any(|&v| v >= nv) {
                return Err(format!("hyperedge {e} references an out-of-range vertex"));
            }
        }
        for v in self.vertices() {
            let edges = self.incident_edges(v);
            for w in edges.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("incident edges of vertex {v} not strictly sorted"));
                }
            }
            if edges.iter().any(|&e| e >= ne) {
                return Err(format!("vertex {v} references an out-of-range hyperedge"));
            }
        }
        // Cross-check: each pin (e, v) must appear as incidence (v, e).
        for e in self.hyperedges() {
            for &v in self.pins(e) {
                if self.incident_edges(v).binary_search(&e).is_err() {
                    return Err(format!(
                        "pin ({e}, {v}) missing from the vertex incidence list"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypergraph")
            .field("name", &self.name)
            .field("vertices", &self.num_vertices())
            .field("hyperedges", &self.num_hyperedges())
            .field("pins", &self.num_pins())
            .finish()
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (|V|={}, |E|={}, pins={})",
            if self.name.is_empty() {
                "<unnamed>"
            } else {
                &self.name
            },
            self.num_vertices(),
            self.num_hyperedges(),
            self.num_pins()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::HypergraphBuilder;

    fn sample() -> crate::Hypergraph {
        // 5 vertices, 3 hyperedges: {0,1,2}, {2,3}, {0,3,4}
        let mut b = HypergraphBuilder::new(5);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([0u32, 3, 4]);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let hg = sample();
        assert_eq!(hg.num_vertices(), 5);
        assert_eq!(hg.num_hyperedges(), 3);
        assert_eq!(hg.num_pins(), 8);
        assert_eq!(hg.cardinality(0), 3);
        assert_eq!(hg.cardinality(1), 2);
        assert_eq!(hg.degree(0), 2);
        assert_eq!(hg.degree(4), 1);
    }

    #[test]
    fn pins_and_incidence_are_consistent() {
        let hg = sample();
        assert_eq!(hg.pins(0), &[0, 1, 2]);
        assert_eq!(hg.pins(2), &[0, 3, 4]);
        assert_eq!(hg.incident_edges(0), &[0, 2]);
        assert_eq!(hg.incident_edges(2), &[0, 1]);
        assert_eq!(hg.incident_edges(3), &[1, 2]);
        hg.validate().expect("sample must validate");
    }

    #[test]
    fn default_weights_are_unit() {
        let hg = sample();
        for v in hg.vertices() {
            assert_eq!(hg.vertex_weight(v), 1.0);
        }
        for e in hg.hyperedges() {
            assert_eq!(hg.edge_weight(e), 1.0);
        }
        assert_eq!(hg.total_vertex_weight(), 5.0);
        assert_eq!(hg.total_edge_weight(), 3.0);
    }

    #[test]
    fn cardinality_and_degree_statistics() {
        let hg = sample();
        assert_eq!(hg.max_cardinality(), 3);
        assert!((hg.avg_cardinality() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(hg.max_degree(), 2);
        assert!((hg.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_debug_mention_counts() {
        let mut hg = sample();
        hg.set_name("sample");
        let d = format!("{hg}");
        assert!(d.contains("sample"));
        assert!(d.contains("|V|=5"));
        let dbg = format!("{hg:?}");
        assert!(dbg.contains("Hypergraph"));
    }

    #[test]
    fn empty_hypergraph_statistics_are_zero() {
        let b = HypergraphBuilder::new(0);
        let hg = b.build();
        assert_eq!(hg.num_vertices(), 0);
        assert_eq!(hg.num_hyperedges(), 0);
        assert_eq!(hg.max_cardinality(), 0);
        assert_eq!(hg.avg_cardinality(), 0.0);
        assert_eq!(hg.max_degree(), 0);
        assert_eq!(hg.avg_degree(), 0.0);
        hg.validate().unwrap();
    }
}
