//! Hypergraph data structures, dataset generators, file IO and
//! partition-quality metrics for the HyperPRAW reproduction.
//!
//! A hypergraph `H = (V, E)` generalises a graph: every hyperedge is a set of
//! vertices of arbitrary cardinality. In the HyperPRAW setting (ICPP 2019)
//! hypergraphs model the communication structure of a parallel application:
//! each hyperedge is a group of computation elements (vertices) that
//! frequently exchange data, so the more partitions a hyperedge spans, the
//! more inter-process communication the application performs.
//!
//! The crate provides:
//!
//! * [`Hypergraph`] — an immutable, cache-friendly compressed sparse
//!   representation storing both directions (hyperedge → pins and
//!   vertex → incident hyperedges),
//! * [`HypergraphBuilder`] — an incremental builder,
//! * [`MutableHypergraph`] — an editable adjacency-list twin of
//!   [`Hypergraph`] supporting batched vertex/hyperedge/pin updates with
//!   stable ids, for the dynamic repartitioning layer,
//! * [`Partition`] — a vertex → partition assignment with load/imbalance
//!   accounting,
//! * [`metrics`] — hyperedge cut, sum of external degrees (SOED),
//!   connectivity-minus-one and related quality metrics,
//! * [`generators`] — synthetic hypergraph families, including
//!   [`generators::suite`] which reproduces the size/cardinality profile of
//!   the ten benchmark hypergraphs used in the paper (Table 1),
//! * [`io`] — hMetis `.hgr`, MatrixMarket `.mtx` and plain edge-list readers
//!   and writers so real datasets can be dropped in.
//!
//! # Quick example
//!
//! ```
//! use hyperpraw_hypergraph::{HypergraphBuilder, Partition, metrics};
//!
//! let mut b = HypergraphBuilder::new(4);
//! b.add_hyperedge([0u32, 1, 2]);
//! b.add_hyperedge([2u32, 3]);
//! let hg = b.build();
//!
//! assert_eq!(hg.num_vertices(), 4);
//! assert_eq!(hg.num_hyperedges(), 2);
//!
//! // Two partitions: {0, 1} and {2, 3}.
//! let part = Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
//! assert_eq!(metrics::hyperedge_cut(&hg, &part), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod hypergraph;
mod partition;
mod stats;

pub mod adjacency;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod mutable;
pub mod pool;
pub mod traversal;

pub use adjacency::{AdjacencyBudget, NeighborAdjacency};
pub use builder::HypergraphBuilder;
pub use hypergraph::{HyperedgeId, Hypergraph, VertexId};
pub use mutable::{MutableHypergraph, MutationError};
pub use partition::{AssignmentRef, Partition, PartitionError};
pub use pool::{run_on_workers, ChunkCursor};
pub use stats::HypergraphStats;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::generators::suite::{PaperInstance, SuiteConfig};
    pub use crate::metrics::{hyperedge_cut, soed};
    pub use crate::{
        Hypergraph, HypergraphBuilder, HypergraphStats, MutableHypergraph, Partition,
        PartitionError,
    };
}
