//! Vertex → partition assignments and load-imbalance accounting.

use std::fmt;

use crate::{Hypergraph, VertexId};

/// Errors produced when constructing or mutating a [`Partition`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The requested number of partitions was zero.
    ZeroParts,
    /// An assignment referenced a partition id `>= num_parts`.
    PartOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The out-of-range partition id.
        part: u32,
        /// The number of partitions.
        num_parts: u32,
    },
    /// The assignment vector length does not match the hypergraph.
    LengthMismatch {
        /// Assignment entries provided.
        got: usize,
        /// Vertices expected.
        expected: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroParts => write!(f, "a partition must have at least one part"),
            Self::PartOutOfRange {
                vertex,
                part,
                num_parts,
            } => write!(
                f,
                "vertex {vertex} assigned to part {part}, but only {num_parts} parts exist"
            ),
            Self::LengthMismatch { got, expected } => write!(
                f,
                "assignment has {got} entries but the hypergraph has {expected} vertices"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A read-only view of a vertex → partition assignment.
///
/// Neighbourhood-counting helpers ([`crate::traversal::NeighborScratch`],
/// [`crate::NeighborAdjacency`]) and the restreaming engine's connectivity
/// providers are generic over this trait so the same counting code can run
/// against a plain [`Partition`] (the sequential and bulk-synchronous
/// drivers) or against a shared atomic assignment that other worker threads
/// mutate concurrently (the work-stealing driver, which tolerates bounded
/// staleness in the counts it reads).
pub trait AssignmentRef {
    /// The partition vertex `v` currently lives in.
    fn part_of(&self, v: VertexId) -> u32;

    /// Number of partitions `p`.
    fn num_parts(&self) -> u32;
}

impl AssignmentRef for Partition {
    fn part_of(&self, v: VertexId) -> u32 {
        Partition::part_of(self, v)
    }

    fn num_parts(&self) -> u32 {
        Partition::num_parts(self)
    }
}

impl<A: AssignmentRef + ?Sized> AssignmentRef for &A {
    fn part_of(&self, v: VertexId) -> u32 {
        (**self).part_of(v)
    }

    fn num_parts(&self) -> u32 {
        (**self).num_parts()
    }
}

/// A complete assignment of vertices to `num_parts` partitions.
///
/// In the HyperPRAW setting each partition corresponds to one compute unit
/// (one MPI process / core) of the target machine, so `num_parts` equals the
/// job size `p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    num_parts: u32,
}

impl Partition {
    /// Creates a partition from an explicit assignment vector.
    pub fn from_assignment(assignment: Vec<u32>, num_parts: u32) -> Result<Self, PartitionError> {
        if num_parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        if let Some((v, &part)) = assignment
            .iter()
            .enumerate()
            .find(|(_, &part)| part >= num_parts)
        {
            return Err(PartitionError::PartOutOfRange {
                vertex: v as VertexId,
                part,
                num_parts,
            });
        }
        Ok(Self {
            assignment,
            num_parts,
        })
    }

    /// Round-robin assignment `v -> v mod p` — the initial placement used by
    /// the HyperPRAW algorithm (Algorithm 1) and also a natural "naive
    /// parallelism" baseline.
    pub fn round_robin(num_vertices: usize, num_parts: u32) -> Self {
        assert!(num_parts > 0, "num_parts must be positive");
        Self {
            assignment: (0..num_vertices).map(|v| (v as u32) % num_parts).collect(),
            num_parts,
        }
    }

    /// Assigns every vertex to partition 0 — the degenerate minimum-cut /
    /// maximum-imbalance solution used in tests and documentation.
    pub fn all_in_one(num_vertices: usize, num_parts: u32) -> Self {
        assert!(num_parts > 0, "num_parts must be positive");
        Self {
            assignment: vec![0; num_vertices],
            num_parts,
        }
    }

    /// Builds an assignment by evaluating `f(v)` for every vertex.
    pub fn from_fn(
        num_vertices: usize,
        num_parts: u32,
        mut f: impl FnMut(VertexId) -> u32,
    ) -> Self {
        assert!(num_parts > 0, "num_parts must be positive");
        let assignment = (0..num_vertices as u32)
            .map(|v| {
                let p = f(v);
                assert!(p < num_parts, "from_fn returned out-of-range part {p}");
                p
            })
            .collect();
        Self {
            assignment,
            num_parts,
        }
    }

    /// Number of partitions `p`.
    pub fn num_parts(&self) -> u32 {
        self.num_parts
    }

    /// Number of assigned vertices.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The partition vertex `v` is assigned to.
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Reassigns vertex `v` to partition `part`.
    pub fn set(&mut self, v: VertexId, part: u32) {
        assert!(part < self.num_parts, "part {part} out of range");
        self.assignment[v as usize] = part;
    }

    /// The raw assignment slice (index = vertex id).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes the partition, returning the raw assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Number of vertices in each partition.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Total vertex weight per partition (the paper's `W(k)`), validated
    /// against the hypergraph size.
    pub fn part_loads(&self, hg: &Hypergraph) -> Result<Vec<f64>, PartitionError> {
        if hg.num_vertices() != self.assignment.len() {
            return Err(PartitionError::LengthMismatch {
                got: self.assignment.len(),
                expected: hg.num_vertices(),
            });
        }
        let mut loads = vec![0.0f64; self.num_parts as usize];
        for (v, &p) in self.assignment.iter().enumerate() {
            loads[p as usize] += hg.vertex_weight(v as VertexId);
        }
        Ok(loads)
    }

    /// Total imbalance as defined in the paper:
    /// `max_k W(k) / (Σ_k W(k) / p)`.
    ///
    /// A perfectly balanced partition has imbalance 1.0; the paper accepts a
    /// solution when this is `<= imbalance_tolerance` (e.g. 1.1).
    /// Returns 0.0 for an empty hypergraph.
    pub fn imbalance(&self, hg: &Hypergraph) -> Result<f64, PartitionError> {
        let loads = self.part_loads(hg)?;
        let total: f64 = loads.iter().sum();
        if total == 0.0 {
            return Ok(0.0);
        }
        let avg = total / self.num_parts as f64;
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        Ok(max / avg)
    }

    /// Lists the vertices of each partition (index = partition id).
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_parts as usize];
        for (v, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(v as VertexId);
        }
        out
    }

    /// Number of non-empty partitions.
    pub fn used_parts(&self) -> usize {
        self.part_sizes().iter().filter(|&&s| s > 0).count()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sizes = self.part_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().min().unwrap_or(0);
        write!(
            f,
            "Partition(p={}, |V|={}, part sizes {}..{})",
            self.num_parts,
            self.num_vertices(),
            min,
            max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn hg4() -> Hypergraph {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([2u32, 3]);
        b.build()
    }

    #[test]
    fn round_robin_balances_sizes() {
        let p = Partition::round_robin(10, 3);
        assert_eq!(p.part_sizes(), vec![4, 3, 3]);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(4), 1);
        assert_eq!(p.used_parts(), 3);
    }

    #[test]
    fn from_assignment_validates_range() {
        let err = Partition::from_assignment(vec![0, 3], 3).unwrap_err();
        assert!(matches!(
            err,
            PartitionError::PartOutOfRange { part: 3, .. }
        ));
        assert!(Partition::from_assignment(vec![0, 2], 3).is_ok());
        assert_eq!(
            Partition::from_assignment(vec![], 0).unwrap_err(),
            PartitionError::ZeroParts
        );
    }

    #[test]
    fn imbalance_of_balanced_partition_is_one() {
        let hg = hg4();
        let p = Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        assert!((p.imbalance(&hg).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_degenerate_partition_is_p() {
        let hg = hg4();
        let p = Partition::all_in_one(4, 2);
        // All weight on one of two parts: max / avg = total / (total/2) = 2.
        assert!((p.imbalance(&hg).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn part_loads_respect_vertex_weights() {
        let mut b = HypergraphBuilder::new(3);
        b.add_hyperedge([0u32, 1, 2]);
        b.set_vertex_weight(0, 5.0);
        let hg = b.build();
        let p = Partition::from_assignment(vec![0, 1, 1], 2).unwrap();
        assert_eq!(p.part_loads(&hg).unwrap(), vec![5.0, 2.0]);
    }

    #[test]
    fn part_loads_detects_length_mismatch() {
        let hg = hg4();
        let p = Partition::round_robin(3, 2);
        assert!(matches!(
            p.part_loads(&hg).unwrap_err(),
            PartitionError::LengthMismatch {
                got: 3,
                expected: 4
            }
        ));
    }

    #[test]
    fn set_and_members_round_trip() {
        let mut p = Partition::round_robin(4, 2);
        p.set(0, 1);
        let members = p.members();
        assert_eq!(members[0], vec![2]);
        assert_eq!(members[1], vec![0, 1, 3]);
    }

    #[test]
    fn from_fn_builds_expected_assignment() {
        let p = Partition::from_fn(6, 2, |v| if v < 3 { 0 } else { 1 });
        assert_eq!(p.assignment(), &[0, 0, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_panics_on_out_of_range_part() {
        let mut p = Partition::round_robin(4, 2);
        p.set(0, 2);
    }

    #[test]
    fn display_summarises_sizes() {
        let p = Partition::round_robin(5, 2);
        let s = format!("{p}");
        assert!(s.contains("p=2"));
        assert!(s.contains("|V|=5"));
    }
}
