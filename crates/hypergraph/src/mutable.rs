//! Mutable hypergraph supporting batched incremental updates.
//!
//! The CSR [`Hypergraph`] is immutable by design — every partitioning
//! driver reads it concurrently and the flat arrays cannot absorb
//! insertions. Dynamic repartitioning (the `hyperpraw-dynamic` crate)
//! instead owns a [`MutableHypergraph`]: an adjacency-list twin keeping
//! *both* directions (edge → pins and vertex → incident edges) in sorted
//! `Vec`s, which absorbs vertex/hyperedge/pin additions and removals in
//! `O(log)`-ish time and re-materialises a CSR snapshot on demand with
//! [`MutableHypergraph::to_hypergraph`].
//!
//! Identifiers are **dense and stable**: removing a vertex or hyperedge
//! leaves a tombstone (the id keeps existing, with weight `0` / an empty
//! pin list) instead of shifting every later id. That keeps external
//! references — partition assignments, adjacency offsets, serve-protocol
//! lookups — valid across update batches without an id-remapping table.
//! New vertices and hyperedges always append fresh ids.
//!
//! ```
//! use hyperpraw_hypergraph::{HypergraphBuilder, MutableHypergraph};
//!
//! let mut b = HypergraphBuilder::new(3);
//! b.add_hyperedge([0u32, 1, 2]);
//! let mut m = MutableHypergraph::from_hypergraph(&b.build());
//! let v = m.add_vertex(1.0);
//! m.add_pin(0, v).unwrap();
//! m.remove_vertex(1).unwrap();
//! let hg = m.to_hypergraph();
//! assert_eq!(hg.pins(0), &[0, 2, 3]);
//! assert_eq!(hg.vertex_weight(1), 0.0); // tombstone keeps the id
//! ```

use std::fmt;

use crate::{HyperedgeId, Hypergraph, HypergraphBuilder, VertexId};

/// Why a single mutation was rejected. Mutations are atomic: a rejected
/// call leaves the hypergraph untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// The vertex id is outside the id space.
    UnknownVertex(VertexId),
    /// The hyperedge id is outside the id space.
    UnknownHyperedge(HyperedgeId),
    /// The vertex exists but was removed (tombstoned).
    DeadVertex(VertexId),
    /// The hyperedge exists but was removed (tombstoned).
    DeadHyperedge(HyperedgeId),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            MutationError::UnknownHyperedge(e) => write!(f, "unknown hyperedge {e}"),
            MutationError::DeadVertex(v) => write!(f, "vertex {v} was removed"),
            MutationError::DeadHyperedge(e) => write!(f, "hyperedge {e} was removed"),
        }
    }
}

impl std::error::Error for MutationError {}

/// A hypergraph that accepts incremental updates. See the
/// [module docs](self) for the tombstone id semantics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutableHypergraph {
    name: String,
    vertex_weights: Vec<f64>,
    vertex_alive: Vec<bool>,
    /// Sorted incident-hyperedge list per vertex.
    incidence: Vec<Vec<HyperedgeId>>,
    /// Sorted distinct pin list per hyperedge; tombstoned edges are empty.
    pins: Vec<Vec<VertexId>>,
    edge_weights: Vec<f64>,
    edge_alive: Vec<bool>,
}

impl MutableHypergraph {
    /// Copies an immutable CSR hypergraph into mutable form. Every vertex
    /// and hyperedge starts alive with its original weight.
    pub fn from_hypergraph(hg: &Hypergraph) -> Self {
        let n = hg.num_vertices();
        let m = hg.num_hyperedges();
        Self {
            name: hg.name().to_string(),
            vertex_weights: (0..n).map(|v| hg.vertex_weight(v as VertexId)).collect(),
            vertex_alive: vec![true; n],
            incidence: (0..n)
                .map(|v| hg.incident_edges(v as VertexId).to_vec())
                .collect(),
            pins: (0..m).map(|e| hg.pins(e as HyperedgeId).to_vec()).collect(),
            edge_weights: (0..m).map(|e| hg.edge_weight(e as HyperedgeId)).collect(),
            edge_alive: vec![true; m],
        }
    }

    /// Re-materialises an immutable CSR snapshot. Tombstoned vertices keep
    /// their id with weight `0` and no incidences; tombstoned hyperedges
    /// keep their id with an empty pin list (legal in the CSR — they can
    /// never be cut).
    pub fn to_hypergraph(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::with_capacity(self.vertex_weights.len(), self.pins.len());
        b.name(self.name.clone());
        for (pins, &w) in self.pins.iter().zip(&self.edge_weights) {
            b.add_weighted_hyperedge(pins.iter().copied(), w);
        }
        for (v, &w) in self.vertex_weights.iter().enumerate() {
            if w != 1.0 {
                b.set_vertex_weight(v as VertexId, w);
            }
        }
        b.build()
    }

    /// Reassembles the mutable form from a CSR snapshot (as produced by
    /// [`MutableHypergraph::to_hypergraph`]) plus the liveness flags of
    /// the instance that wrote it — the persistence path of the dynamic
    /// journal. Tombstone invariants are validated: a dead vertex must
    /// have weight `0` and no incidences, a dead hyperedge must have an
    /// empty pin list. On success the result is equal (`PartialEq`) to
    /// the instance the snapshot and flags were taken from.
    pub fn from_snapshot(
        hg: &Hypergraph,
        vertex_alive: &[bool],
        edge_alive: &[bool],
    ) -> Result<Self, String> {
        if vertex_alive.len() != hg.num_vertices() {
            return Err(format!(
                "vertex liveness covers {} ids but the snapshot has {}",
                vertex_alive.len(),
                hg.num_vertices()
            ));
        }
        if edge_alive.len() != hg.num_hyperedges() {
            return Err(format!(
                "hyperedge liveness covers {} ids but the snapshot has {}",
                edge_alive.len(),
                hg.num_hyperedges()
            ));
        }
        for (v, &alive) in vertex_alive.iter().enumerate() {
            let v = v as VertexId;
            if !alive && (hg.vertex_weight(v) != 0.0 || !hg.incident_edges(v).is_empty()) {
                return Err(format!(
                    "tombstoned vertex {v} still carries weight or pins"
                ));
            }
        }
        for (e, &alive) in edge_alive.iter().enumerate() {
            let e = e as HyperedgeId;
            if !alive && !hg.pins(e).is_empty() {
                return Err(format!("tombstoned hyperedge {e} still has pins"));
            }
        }
        let mut m = Self::from_hypergraph(hg);
        m.vertex_alive.copy_from_slice(vertex_alive);
        m.edge_alive.copy_from_slice(edge_alive);
        Ok(m)
    }

    /// Per-id vertex liveness flags (index = vertex id), for persistence.
    pub fn vertex_alive_flags(&self) -> &[bool] {
        &self.vertex_alive
    }

    /// Per-id hyperedge liveness flags (index = hyperedge id), for
    /// persistence.
    pub fn edge_alive_flags(&self) -> &[bool] {
        &self.edge_alive
    }

    /// Number of vertex ids (live and tombstoned).
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of hyperedge ids (live and tombstoned).
    pub fn num_hyperedges(&self) -> usize {
        self.pins.len()
    }

    /// Number of live (non-tombstoned) vertices.
    pub fn num_live_vertices(&self) -> usize {
        self.vertex_alive.iter().filter(|&&a| a).count()
    }

    /// Whether `v` exists and is live.
    pub fn is_vertex_alive(&self, v: VertexId) -> bool {
        self.vertex_alive.get(v as usize).copied().unwrap_or(false)
    }

    /// Whether `e` exists and is live.
    pub fn is_hyperedge_alive(&self, e: HyperedgeId) -> bool {
        self.edge_alive.get(e as usize).copied().unwrap_or(false)
    }

    /// Weight of vertex `v` (`0` once tombstoned).
    pub fn vertex_weight(&self, v: VertexId) -> f64 {
        self.vertex_weights[v as usize]
    }

    /// Weight of hyperedge `e`.
    pub fn edge_weight(&self, e: HyperedgeId) -> f64 {
        self.edge_weights[e as usize]
    }

    /// The sorted distinct pins of hyperedge `e` (empty once tombstoned).
    pub fn pins(&self, e: HyperedgeId) -> &[VertexId] {
        &self.pins[e as usize]
    }

    /// The sorted incident hyperedges of vertex `v` (empty once
    /// tombstoned).
    pub fn incident_edges(&self, v: VertexId) -> &[HyperedgeId] {
        &self.incidence[v as usize]
    }

    /// Appends a new vertex and returns its id.
    pub fn add_vertex(&mut self, weight: f64) -> VertexId {
        let v = self.vertex_weights.len() as VertexId;
        self.vertex_weights.push(weight);
        self.vertex_alive.push(true);
        self.incidence.push(Vec::new());
        v
    }

    /// Tombstones vertex `v`: strips it from every incident hyperedge and
    /// zeroes its weight. Idempotent on an already-dead vertex.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<(), MutationError> {
        let i = v as usize;
        if i >= self.vertex_weights.len() {
            return Err(MutationError::UnknownVertex(v));
        }
        if !self.vertex_alive[i] {
            return Ok(());
        }
        for e in std::mem::take(&mut self.incidence[i]) {
            let pins = &mut self.pins[e as usize];
            if let Ok(pos) = pins.binary_search(&v) {
                pins.remove(pos);
            }
        }
        self.vertex_alive[i] = false;
        self.vertex_weights[i] = 0.0;
        Ok(())
    }

    /// Appends a new hyperedge over `pins` (deduplicated, must all be
    /// live) and returns its id.
    pub fn add_hyperedge<I>(&mut self, pins: I, weight: f64) -> Result<HyperedgeId, MutationError>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut pins: Vec<VertexId> = pins.into_iter().collect();
        pins.sort_unstable();
        pins.dedup();
        for &v in &pins {
            self.check_live_vertex(v)?;
        }
        let e = self.pins.len() as HyperedgeId;
        for &v in &pins {
            self.incidence[v as usize].push(e); // e is the max id: stays sorted
        }
        self.pins.push(pins);
        self.edge_weights.push(weight);
        self.edge_alive.push(true);
        Ok(e)
    }

    /// Tombstones hyperedge `e`: its pin list empties and it disappears
    /// from every pin's incidence. Idempotent on an already-dead edge.
    pub fn remove_hyperedge(&mut self, e: HyperedgeId) -> Result<(), MutationError> {
        let i = e as usize;
        if i >= self.pins.len() {
            return Err(MutationError::UnknownHyperedge(e));
        }
        if !self.edge_alive[i] {
            return Ok(());
        }
        for v in std::mem::take(&mut self.pins[i]) {
            let inc = &mut self.incidence[v as usize];
            if let Ok(pos) = inc.binary_search(&e) {
                inc.remove(pos);
            }
        }
        self.edge_alive[i] = false;
        Ok(())
    }

    /// Adds live vertex `v` as a pin of live hyperedge `e`. Returns `false`
    /// when the pin was already present.
    pub fn add_pin(&mut self, e: HyperedgeId, v: VertexId) -> Result<bool, MutationError> {
        self.check_live_edge(e)?;
        self.check_live_vertex(v)?;
        let pins = &mut self.pins[e as usize];
        match pins.binary_search(&v) {
            Ok(_) => Ok(false),
            Err(pos) => {
                pins.insert(pos, v);
                let inc = &mut self.incidence[v as usize];
                if let Err(ipos) = inc.binary_search(&e) {
                    inc.insert(ipos, e);
                }
                Ok(true)
            }
        }
    }

    /// Removes vertex `v` from the pins of live hyperedge `e`. Returns
    /// `false` when the pin was not present.
    pub fn remove_pin(&mut self, e: HyperedgeId, v: VertexId) -> Result<bool, MutationError> {
        self.check_live_edge(e)?;
        if v as usize >= self.vertex_weights.len() {
            return Err(MutationError::UnknownVertex(v));
        }
        let pins = &mut self.pins[e as usize];
        match pins.binary_search(&v) {
            Err(_) => Ok(false),
            Ok(pos) => {
                pins.remove(pos);
                let inc = &mut self.incidence[v as usize];
                if let Ok(ipos) = inc.binary_search(&e) {
                    inc.remove(ipos);
                }
                Ok(true)
            }
        }
    }

    fn check_live_vertex(&self, v: VertexId) -> Result<(), MutationError> {
        match self.vertex_alive.get(v as usize) {
            None => Err(MutationError::UnknownVertex(v)),
            Some(false) => Err(MutationError::DeadVertex(v)),
            Some(true) => Ok(()),
        }
    }

    fn check_live_edge(&self, e: HyperedgeId) -> Result<(), MutationError> {
        match self.edge_alive.get(e as usize) {
            None => Err(MutationError::UnknownHyperedge(e)),
            Some(false) => Err(MutationError::DeadHyperedge(e)),
            Some(true) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MutableHypergraph {
        let mut b = HypergraphBuilder::new(5);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3, 4]);
        MutableHypergraph::from_hypergraph(&b.build())
    }

    #[test]
    fn round_trips_through_the_csr_unchanged() {
        let mut b = HypergraphBuilder::new(4);
        b.add_weighted_hyperedge([0u32, 1], 2.0);
        b.add_hyperedge([1u32, 2, 3]);
        b.set_vertex_weight(3, 5.0);
        let hg = b.build();
        let m = MutableHypergraph::from_hypergraph(&hg);
        assert_eq!(m.to_hypergraph(), hg);
    }

    #[test]
    fn vertex_removal_strips_pins_and_keeps_the_id_space() {
        let mut m = sample();
        m.remove_vertex(2).unwrap();
        assert!(!m.is_vertex_alive(2));
        assert_eq!(m.pins(0), &[0, 1]);
        assert_eq!(m.pins(1), &[3, 4]);
        assert_eq!(m.incident_edges(2), &[] as &[HyperedgeId]);
        // Idempotent.
        m.remove_vertex(2).unwrap();
        let hg = m.to_hypergraph();
        assert_eq!(hg.num_vertices(), 5);
        assert_eq!(hg.vertex_weight(2), 0.0);
        hg.validate().unwrap();
    }

    #[test]
    fn edge_removal_empties_the_pin_list() {
        let mut m = sample();
        m.remove_hyperedge(0).unwrap();
        assert!(!m.is_hyperedge_alive(0));
        assert_eq!(m.pins(0), &[] as &[VertexId]);
        assert_eq!(m.incident_edges(2), &[1]);
        let hg = m.to_hypergraph();
        assert_eq!(hg.num_hyperedges(), 2);
        assert_eq!(hg.cardinality(0), 0);
        hg.validate().unwrap();
    }

    #[test]
    fn pins_insert_sorted_and_are_idempotent() {
        let mut m = sample();
        assert!(m.add_pin(0, 4).unwrap());
        assert!(!m.add_pin(0, 4).unwrap());
        assert_eq!(m.pins(0), &[0, 1, 2, 4]);
        assert_eq!(m.incident_edges(4), &[0, 1]);
        assert!(m.remove_pin(0, 4).unwrap());
        assert!(!m.remove_pin(0, 4).unwrap());
        assert_eq!(m.pins(0), &[0, 1, 2]);
    }

    #[test]
    fn appended_vertices_and_edges_get_fresh_ids() {
        let mut m = sample();
        let v = m.add_vertex(2.5);
        assert_eq!(v, 5);
        let e = m.add_hyperedge([0, v], 1.0).unwrap();
        assert_eq!(e, 2);
        assert_eq!(m.incident_edges(v), &[2]);
        let hg = m.to_hypergraph();
        assert_eq!(hg.num_vertices(), 6);
        assert_eq!(hg.vertex_weight(5), 2.5);
        assert_eq!(hg.pins(2), &[0, 5]);
        hg.validate().unwrap();
    }

    #[test]
    fn snapshot_plus_liveness_flags_round_trips_tombstones() {
        let mut m = sample();
        m.remove_vertex(1).unwrap();
        m.remove_hyperedge(1).unwrap();
        let v = m.add_vertex(2.5);
        m.add_hyperedge([0, v], 3.0).unwrap();
        let rebuilt = MutableHypergraph::from_snapshot(
            &m.to_hypergraph(),
            m.vertex_alive_flags(),
            m.edge_alive_flags(),
        )
        .unwrap();
        assert_eq!(rebuilt, m);

        // Lying flags are rejected: a "dead" vertex that still has pins.
        let live = sample();
        let mut flags = live.vertex_alive_flags().to_vec();
        flags[0] = false;
        let err = MutableHypergraph::from_snapshot(
            &live.to_hypergraph(),
            &flags,
            live.edge_alive_flags(),
        )
        .unwrap_err();
        assert!(err.contains("tombstoned vertex 0"), "{err}");
        // Length mismatches are rejected too.
        assert!(MutableHypergraph::from_snapshot(
            &live.to_hypergraph(),
            &[],
            live.edge_alive_flags()
        )
        .is_err());
    }

    #[test]
    fn dead_references_are_rejected_without_mutation() {
        let mut m = sample();
        m.remove_vertex(1).unwrap();
        assert_eq!(m.add_pin(0, 1), Err(MutationError::DeadVertex(1)));
        assert_eq!(
            m.add_hyperedge([0, 1], 1.0),
            Err(MutationError::DeadVertex(1))
        );
        m.remove_hyperedge(1).unwrap();
        assert_eq!(m.add_pin(1, 0), Err(MutationError::DeadHyperedge(1)));
        assert_eq!(m.remove_pin(1, 0), Err(MutationError::DeadHyperedge(1)));
        assert_eq!(m.add_pin(9, 0), Err(MutationError::UnknownHyperedge(9)));
        assert_eq!(m.remove_vertex(9), Err(MutationError::UnknownVertex(9)));
        // Failed mutations left the live parts intact.
        assert_eq!(m.pins(0), &[0, 2]);
    }
}
