//! Precomputed deduplicated neighbour adjacency (CSR over distinct
//! neighbours).
//!
//! Restreaming partitioners ask the same question for every vertex on every
//! pass: *which partitions do my distinct neighbours live in?* Answering it
//! by traversing all pins of all incident hyperedges through an epoch-marked
//! [`NeighborScratch`] costs `O(Σ_{e∋v}|e|)` per visit — work that is
//! repeated identically on every one of the `N` restreaming passes even
//! though the neighbour sets never change. [`NeighborAdjacency`] pays that
//! traversal exactly once, storing each vertex's distinct neighbours
//! (self excluded) as a flat CSR slice so every later query is a single
//! cache-linear scan with no epoch array and no nested pin loop.
//!
//! Dense hypergraphs can make the full adjacency quadratic (a single
//! hyperedge of cardinality `c` alone contributes `c·(c−1)` entries), so the
//! structure is **budget-aware and hybrid**: an [`AdjacencyBudget`] caps the
//! flat-list bytes, vertices whose distinct degree fits get flat lists, and
//! *hub* vertices above the automatically chosen degree cutover keep
//! answering through the epoch-traversal fallback. Counts produced by either
//! path are exact integers, so results are bit-identical to
//! [`NeighborScratch::neighbor_partition_counts`] regardless of which side
//! of the cutover a vertex lands on.
//!
//! Construction runs in parallel across vertex ranges (two passes: distinct
//! degrees, then list filling into disjoint output slices), is deterministic
//! for any thread count, and never allocates per vertex.
//!
//! For dynamic hypergraphs the structure additionally supports **overlay
//! patching** ([`NeighborAdjacency::patch_vertex`]): the flat CSR arrays
//! cannot shift in place, so vertices whose neighbourhood changed get a
//! replacement list in a side map consulted before the base arrays, and
//! appended vertices ([`NeighborAdjacency::ensure_vertices`]) default to
//! isolated until patched. Patched lists that outgrow the cutover become
//! hubs like any other. Callers bound the overlay through
//! [`NeighborAdjacency::patched_fraction`], rebuilding from scratch past a
//! staleness threshold.

use std::collections::HashMap;
use std::thread;

use crate::partition::AssignmentRef;
use crate::traversal::NeighborScratch;
use crate::{Hypergraph, VertexId};

/// Memory policy for the flat neighbour lists of a [`NeighborAdjacency`].
///
/// The budget covers the neighbour-list entries (`4` bytes each); the fixed
/// per-vertex bookkeeping (offsets and distinct degrees, `~12` bytes per
/// vertex) is always paid, as it is what makes the hybrid fallback and
/// [`NeighborAdjacency::distinct_degree`] O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdjacencyBudget {
    /// Store every vertex's distinct neighbours, whatever the cost. Only
    /// sensible when the instance is known to be sparse.
    Unbounded,
    /// Cap the flat lists at this many heap bytes; the degree cutover is
    /// chosen as the largest value whose vertices collectively fit.
    MaxBytes(usize),
    /// Force the degree cutover directly: vertices with more distinct
    /// neighbours than this are hubs. Mostly useful for tests exercising
    /// the hybrid path deterministically.
    DegreeCutoff(usize),
    /// Derive the byte cap from the hypergraph's own size: the lists may
    /// use up to [`AUTO_ENTRIES_PER_PIN`] entries per pin (so adjacency
    /// memory stays linear in the input even when hyperedge overlap would
    /// make the full adjacency quadratic), with a small floor so tiny
    /// instances are always fully indexed.
    Auto,
}

/// Flat-list entries allowed per pin under [`AdjacencyBudget::Auto`]. The
/// CSR hypergraph itself stores two `u32` per pin; allowing eight entries
/// per pin keeps the adjacency within ~4× of the input's own footprint.
pub const AUTO_ENTRIES_PER_PIN: usize = 8;

/// Entry floor for [`AdjacencyBudget::Auto`]: instances this small are
/// always fully indexed regardless of their pin count.
pub const AUTO_MIN_ENTRIES: usize = 1 << 16;

impl AdjacencyBudget {
    /// The neighbour-list entry cap this budget implies for `hg`, or
    /// `None` when the budget is expressed as a degree cutover instead.
    fn entry_cap(&self, hg: &Hypergraph) -> Option<usize> {
        match *self {
            AdjacencyBudget::Unbounded => Some(usize::MAX),
            AdjacencyBudget::MaxBytes(bytes) => Some(bytes / std::mem::size_of::<VertexId>()),
            AdjacencyBudget::DegreeCutoff(_) => None,
            AdjacencyBudget::Auto => {
                Some((hg.num_pins() * AUTO_ENTRIES_PER_PIN).max(AUTO_MIN_ENTRIES))
            }
        }
    }
}

/// The precomputed distinct-neighbour CSR, with hub fallback.
///
/// For every non-hub vertex `v`, [`NeighborAdjacency::neighbors`] returns
/// the slice of its distinct neighbours (self excluded); hub vertices —
/// those whose distinct degree exceeds [`NeighborAdjacency::cutoff`] —
/// carry no list and answer partition-count queries through an epoch
/// traversal of the hypergraph instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborAdjacency {
    /// CSR offsets over `neighbors`; hub vertices have an empty range.
    offsets: Vec<usize>,
    /// Concatenated distinct-neighbour lists of the non-hub vertices, in
    /// the same (first-encounter) order the epoch traversal produces.
    neighbors: Vec<VertexId>,
    /// Exact distinct degree of *every* base vertex, hubs included.
    distinct_degrees: Vec<u32>,
    /// Distinct-degree cutover: `distinct_degree(v) > cutoff` makes a hub.
    cutoff: usize,
    /// Number of hub vertices, overlay patches included.
    num_hubs: usize,
    /// Logical vertex count: the base CSR covers `offsets.len() - 1`
    /// vertices, but [`NeighborAdjacency::ensure_vertices`] may extend the
    /// id space past it; appended vertices answer through the overlay (or
    /// as isolated when never patched).
    len: usize,
    /// Replacement neighbourhoods for vertices whose incidence changed
    /// after the base build; consulted before the CSR arrays.
    overlay: HashMap<VertexId, Patch>,
}

/// Overlay record for one patched vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Patch {
    /// Replacement distinct-neighbour list (sorted, self excluded).
    List(Vec<VertexId>),
    /// The patched neighbourhood outgrew the cutover: keep only the exact
    /// distinct degree so overlay memory stays bounded, and answer
    /// partition-count queries through the traversal fallback like any
    /// base hub.
    Hub {
        /// Exact distinct degree at patch time.
        distinct_degree: u32,
    },
}

/// Number of worker threads used to build the adjacency, bounded by the
/// caller's cap.
fn build_threads(num_vertices: usize, max_threads: usize) -> usize {
    let available = thread::available_parallelism().map_or(1, |n| n.get());
    // Below ~16k vertices the spawn overhead beats the parallel win.
    available
        .min(8)
        .min(num_vertices / 16_384)
        .min(max_threads)
        .max(1)
}

/// Splits `0..n` into `threads` contiguous ranges.
fn vertex_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(threads.max(1)).max(1);
    (0..n)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(n)))
        .collect()
}

impl NeighborAdjacency {
    /// Builds the adjacency for `hg` under `budget`, in parallel across
    /// vertex ranges (up to 8 workers, fewer on small instances). The
    /// result is deterministic for any thread count. Callers that must
    /// bound their CPU footprint — core-pinned HPC allocations, nominally
    /// sequential drivers — use [`NeighborAdjacency::build_with_threads`].
    pub fn build(hg: &Hypergraph, budget: AdjacencyBudget) -> Self {
        Self::build_with_threads(hg, budget, usize::MAX)
    }

    /// [`NeighborAdjacency::build`] with the worker count capped at
    /// `max_threads` (`1` forces a fully sequential build). The built
    /// structure is identical whatever the cap.
    pub fn build_with_threads(
        hg: &Hypergraph,
        budget: AdjacencyBudget,
        max_threads: usize,
    ) -> Self {
        let n = hg.num_vertices();
        let threads = build_threads(n, max_threads);
        let ranges = vertex_ranges(n, threads);

        // Pass 1: exact distinct degree of every vertex.
        let mut distinct_degrees = vec![0u32; n];
        if n > 0 {
            thread::scope(|scope| {
                let mut rest = distinct_degrees.as_mut_slice();
                for &(start, end) in &ranges {
                    let (chunk, tail) = rest.split_at_mut(end - start);
                    rest = tail;
                    scope.spawn(move || {
                        let mut scratch = NeighborScratch::new(hg.num_vertices());
                        for (slot, v) in chunk.iter_mut().zip(start..end) {
                            *slot = scratch.neighbors(hg, v as VertexId).len() as u32;
                        }
                    });
                }
            });
        }

        // Choose the degree cutover: the largest distinct degree whose
        // vertices collectively fit the entry budget.
        let cutoff = match budget.entry_cap(hg) {
            None => match budget {
                AdjacencyBudget::DegreeCutoff(c) => c,
                _ => unreachable!("entry_cap is None only for DegreeCutoff"),
            },
            Some(cap) => cutoff_for_cap(&distinct_degrees, cap),
        };

        // CSR offsets: hubs contribute empty ranges.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for &dd in &distinct_degrees {
            if (dd as usize) <= cutoff {
                total += dd as usize;
            }
            offsets.push(total);
        }
        let num_hubs = distinct_degrees
            .iter()
            .filter(|&&dd| dd as usize > cutoff)
            .count();

        // Pass 2: fill the flat lists, each worker writing its range's
        // disjoint output slice.
        let mut neighbors = vec![0 as VertexId; total];
        if total > 0 {
            thread::scope(|scope| {
                let offsets = &offsets;
                let mut rest = neighbors.as_mut_slice();
                let mut consumed = 0usize;
                for &(start, end) in &ranges {
                    let span = offsets[end] - offsets[start];
                    let (chunk, tail) = rest.split_at_mut(span);
                    rest = tail;
                    debug_assert_eq!(consumed, offsets[start]);
                    consumed += span;
                    scope.spawn(move || {
                        let mut scratch = NeighborScratch::new(hg.num_vertices());
                        let base = offsets[start];
                        for v in start..end {
                            let lo = offsets[v] - base;
                            let hi = offsets[v + 1] - base;
                            if lo == hi {
                                continue; // hub or isolated vertex
                            }
                            let found = scratch.neighbors(hg, v as VertexId);
                            chunk[lo..hi].copy_from_slice(found);
                        }
                    });
                }
            });
        }

        Self {
            offsets,
            neighbors,
            distinct_degrees,
            cutoff,
            num_hubs,
            len: n,
            overlay: HashMap::new(),
        }
    }

    /// Number of vertices covered, including any appended through
    /// [`NeighborAdjacency::ensure_vertices`].
    pub fn num_vertices(&self) -> usize {
        self.len
    }

    /// The distinct-degree cutover in effect: vertices above it are hubs.
    pub fn cutoff(&self) -> usize {
        self.cutoff
    }

    /// Number of hub vertices (answered through the traversal fallback).
    pub fn num_hubs(&self) -> usize {
        self.num_hubs
    }

    /// Whether `v` is a hub (no flat list; queries fall back to traversal).
    pub fn is_hub(&self, v: VertexId) -> bool {
        match self.overlay.get(&v) {
            Some(Patch::Hub { .. }) => true,
            Some(Patch::List(_)) => false,
            None => {
                let i = v as usize;
                i < self.distinct_degrees.len() && self.distinct_degrees[i] as usize > self.cutoff
            }
        }
    }

    /// Exact number of distinct neighbours of `v` (self excluded), O(1)
    /// for every vertex including hubs. For patched vertices this is the
    /// degree at patch time; appended-but-never-patched vertices are `0`.
    pub fn distinct_degree(&self, v: VertexId) -> usize {
        match self.overlay.get(&v) {
            Some(Patch::Hub { distinct_degree }) => *distinct_degree as usize,
            Some(Patch::List(list)) => list.len(),
            None => {
                let i = v as usize;
                if i < self.distinct_degrees.len() {
                    self.distinct_degrees[i] as usize
                } else {
                    0
                }
            }
        }
    }

    /// The distinct neighbours of `v`, or `None` when `v` is a hub. An
    /// isolated vertex yields `Some(&[])`, as does a vertex appended
    /// through [`NeighborAdjacency::ensure_vertices`] and never patched.
    pub fn neighbors(&self, v: VertexId) -> Option<&[VertexId]> {
        match self.overlay.get(&v) {
            Some(Patch::Hub { .. }) => return None,
            Some(Patch::List(list)) => return Some(list),
            None => {}
        }
        let i = v as usize;
        if i + 1 >= self.offsets.len() {
            return Some(&[]); // appended after the base build, never patched
        }
        if self.distinct_degrees[i] as usize > self.cutoff {
            return None;
        }
        Some(&self.neighbors[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Extends the logical vertex id space to at least `n` vertices.
    /// Appended vertices answer as isolated until
    /// [`NeighborAdjacency::patch_vertex`] gives them a neighbourhood.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.len {
            self.len = n;
        }
    }

    /// Replaces the stored neighbourhood of `v` with `neighbors` (deduped,
    /// self removed). A patched list larger than the cutover is recorded
    /// as a hub — only its degree is kept and queries fall back to
    /// traversal — so overlay memory obeys the same budget discipline as
    /// the base build. Extends the id space to cover `v` if needed.
    pub fn patch_vertex(&mut self, v: VertexId, mut neighbors: Vec<VertexId>) {
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors.retain(|&u| u != v);
        self.ensure_vertices(v as usize + 1);
        let was_hub = self.is_hub(v);
        let now_hub = neighbors.len() > self.cutoff;
        let patch = if now_hub {
            Patch::Hub {
                distinct_degree: neighbors.len() as u32,
            }
        } else {
            Patch::List(neighbors)
        };
        self.overlay.insert(v, patch);
        match (was_hub, now_hub) {
            (false, true) => self.num_hubs += 1,
            (true, false) => self.num_hubs -= 1,
            _ => {}
        }
    }

    /// Number of vertices currently answered through the overlay.
    pub fn patched_count(&self) -> usize {
        self.overlay.len()
    }

    /// Fraction of the id space answered through the overlay — the
    /// staleness signal dynamic callers compare against their rebuild
    /// threshold.
    pub fn patched_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.overlay.len() as f64 / self.len as f64
        }
    }

    /// Total flat-list entries stored.
    pub fn num_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Heap bytes held by the structure, overlay patches included.
    pub fn memory_bytes(&self) -> usize {
        let overlay_bytes: usize = self
            .overlay
            .values()
            .map(|p| {
                std::mem::size_of::<(VertexId, Patch)>()
                    + match p {
                        Patch::List(list) => list.capacity() * std::mem::size_of::<VertexId>(),
                        Patch::Hub { .. } => 0,
                    }
            })
            .sum();
        self.neighbors.capacity() * std::mem::size_of::<VertexId>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.distinct_degrees.capacity() * std::mem::size_of::<u32>()
            + overlay_bytes
    }

    /// Counts, for every partition `j`, the number of distinct neighbours
    /// of `v` assigned to `j` — the paper's `X_j(v)` — writing into
    /// `counts` (cleared and resized to `partition.num_parts()`).
    ///
    /// Non-hub vertices are answered by a flat scan of the precomputed
    /// list; hubs traverse the hypergraph through `fallback`, which is
    /// created on first use so callers that never meet a hub stay O(1).
    /// Either path produces counts bit-identical to
    /// [`NeighborScratch::neighbor_partition_counts`].
    pub fn neighbor_partition_counts<A: AssignmentRef>(
        &self,
        hg: &Hypergraph,
        partition: &A,
        v: VertexId,
        fallback: &mut Option<NeighborScratch>,
        counts: &mut Vec<u32>,
    ) {
        match self.neighbors(v) {
            Some(list) => {
                counts.clear();
                counts.resize(partition.num_parts() as usize, 0);
                for &u in list {
                    counts[partition.part_of(u) as usize] += 1;
                }
            }
            None => {
                let scratch =
                    fallback.get_or_insert_with(|| NeighborScratch::new(hg.num_vertices()));
                scratch.neighbor_partition_counts(hg, partition, v, counts);
            }
        }
    }
}

/// Largest distinct degree `c` such that all vertices with distinct degree
/// `≤ c` collectively fit `cap` flat-list entries. Degree 0 always fits.
fn cutoff_for_cap(distinct_degrees: &[u32], cap: usize) -> usize {
    let mut degrees: Vec<u32> = distinct_degrees.to_vec();
    degrees.sort_unstable();
    let mut cutoff = 0usize;
    let mut used = 0usize;
    let mut i = 0usize;
    while i < degrees.len() {
        let dd = degrees[i];
        let mut group = 0usize;
        while i < degrees.len() && degrees[i] == dd {
            group += dd as usize;
            i += 1;
        }
        if used + group > cap {
            break;
        }
        used += group;
        cutoff = dd as usize;
    }
    cutoff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{mesh_hypergraph, powerlaw_hypergraph, MeshConfig, PowerLawConfig};
    use crate::{HypergraphBuilder, Partition};

    /// e0 = {0,1,2}, e1 = {2,3}, isolated vertex 4, e2 = {5,6}
    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new(7);
        b.add_hyperedge([0u32, 1, 2]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([5u32, 6]);
        b.build()
    }

    fn sorted(mut v: Vec<VertexId>) -> Vec<VertexId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn unbounded_adjacency_matches_epoch_traversal() {
        let adj = NeighborAdjacency::build(&sample(), AdjacencyBudget::Unbounded);
        let hg = sample();
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        assert_eq!(adj.num_hubs(), 0);
        for v in hg.vertices() {
            let expected = sorted(scratch.neighbors(&hg, v).to_vec());
            let got = sorted(adj.neighbors(v).expect("no hubs").to_vec());
            assert_eq!(got, expected, "vertex {v}");
            assert_eq!(adj.distinct_degree(v), expected.len());
        }
        assert_eq!(adj.neighbors(4), Some(&[][..]));
    }

    #[test]
    fn partition_counts_match_scratch_on_both_paths() {
        let hg = sample();
        let part = Partition::from_assignment(vec![0, 1, 1, 0, 0, 1, 0], 2).unwrap();
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for cutoff in 0..=4 {
            let adj = NeighborAdjacency::build(&hg, AdjacencyBudget::DegreeCutoff(cutoff));
            let mut fallback = None;
            for v in hg.vertices() {
                scratch.neighbor_partition_counts(&hg, &part, v, &mut expected);
                adj.neighbor_partition_counts(&hg, &part, v, &mut fallback, &mut got);
                assert_eq!(got, expected, "cutoff {cutoff}, vertex {v}");
            }
            // The fallback scratch only materialises when a hub exists.
            assert_eq!(fallback.is_some(), adj.num_hubs() > 0, "cutoff {cutoff}");
        }
    }

    #[test]
    fn degree_cutoff_marks_hubs() {
        let hg = sample();
        // Distinct degrees: v2 has 3, v0/v1/v3/v5/v6 have 1..2, v4 has 0.
        let adj = NeighborAdjacency::build(&hg, AdjacencyBudget::DegreeCutoff(2));
        assert!(adj.is_hub(2));
        assert_eq!(adj.num_hubs(), 1);
        assert_eq!(adj.neighbors(2), None);
        assert_eq!(adj.distinct_degree(2), 3);
        assert!(adj.neighbors(0).is_some());
    }

    #[test]
    fn byte_budget_drops_the_heaviest_vertices_first() {
        let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
        let full = NeighborAdjacency::build(&hg, AdjacencyBudget::Unbounded);
        let cap_bytes = full.num_entries() * std::mem::size_of::<VertexId>() / 2;
        let half = NeighborAdjacency::build(&hg, AdjacencyBudget::MaxBytes(cap_bytes));
        assert!(half.num_entries() <= full.num_entries() / 2 + 1);
        assert!(half.cutoff() <= full.cutoff());
        // Every stored list is still exact.
        let mut scratch = NeighborScratch::new(hg.num_vertices());
        for v in hg.vertices() {
            if let Some(list) = half.neighbors(v) {
                assert_eq!(
                    sorted(list.to_vec()),
                    sorted(scratch.neighbors(&hg, v).to_vec())
                );
            } else {
                assert!(half.distinct_degree(v) > half.cutoff());
            }
        }
    }

    #[test]
    fn auto_budget_fully_indexes_small_sparse_instances() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let adj = NeighborAdjacency::build(&hg, AdjacencyBudget::Auto);
        assert_eq!(adj.num_hubs(), 0, "sparse mesh must fit the auto budget");
    }

    #[test]
    fn auto_budget_caps_skewed_instances() {
        // A power-law instance with huge hyperedges makes the dedup
        // adjacency superlinear; a tiny explicit budget must hub the heavy
        // vertices while keeping the light ones flat.
        let hg = powerlaw_hypergraph(&PowerLawConfig {
            num_vertices: 400,
            num_hyperedges: 250,
            seed: 5,
            ..PowerLawConfig::default()
        });
        let full = NeighborAdjacency::build(&hg, AdjacencyBudget::Unbounded);
        let capped = NeighborAdjacency::build(
            &hg,
            AdjacencyBudget::MaxBytes(full.num_entries()), // a quarter of full
        );
        assert!(capped.num_hubs() > 0);
        assert!(capped.num_hubs() < hg.num_vertices());
        assert!(capped.num_entries() < full.num_entries());
    }

    #[test]
    fn thread_cap_never_changes_the_structure() {
        let hg = mesh_hypergraph(&MeshConfig::new(700, 8));
        let default = NeighborAdjacency::build(&hg, AdjacencyBudget::Auto);
        for cap in [1usize, 2, 7] {
            let capped = NeighborAdjacency::build_with_threads(&hg, AdjacencyBudget::Auto, cap);
            assert_eq!(capped, default, "cap {cap}");
        }
    }

    #[test]
    fn empty_hypergraph_builds() {
        let hg = HypergraphBuilder::new(0).build();
        let adj = NeighborAdjacency::build(&hg, AdjacencyBudget::Auto);
        assert_eq!(adj.num_vertices(), 0);
        assert_eq!(adj.num_entries(), 0);
        assert_eq!(adj.num_hubs(), 0);
    }

    #[test]
    fn memory_accounting_is_consistent() {
        let hg = sample();
        let adj = NeighborAdjacency::build(&hg, AdjacencyBudget::Unbounded);
        assert!(adj.memory_bytes() >= adj.num_entries() * std::mem::size_of::<VertexId>());
    }

    #[test]
    fn patches_replace_the_base_list_and_stay_exact() {
        let hg = sample();
        let mut adj = NeighborAdjacency::build(&hg, AdjacencyBudget::Unbounded);
        // Pretend vertex 3 gained neighbour 5 and lost neighbour 2; the
        // patch (unsorted, with a duplicate and a self-loop) must be
        // normalised on the way in.
        adj.patch_vertex(3, vec![5, 3, 5, 0]);
        assert_eq!(adj.neighbors(3), Some(&[0, 5][..]));
        assert_eq!(adj.distinct_degree(3), 2);
        assert_eq!(adj.patched_count(), 1);
        assert!(adj.patched_fraction() > 0.0);
        // Untouched vertices still answer from the base CSR.
        assert_eq!(sorted(adj.neighbors(2).unwrap().to_vec()), vec![0, 1, 3]);
        // Partition counts flow through the patched list.
        let part = Partition::from_assignment(vec![0, 1, 1, 0, 0, 1, 0], 2).unwrap();
        let mut fallback = None;
        let mut counts = Vec::new();
        adj.neighbor_partition_counts(&hg, &part, 3, &mut fallback, &mut counts);
        assert_eq!(counts, vec![1, 1]); // neighbour 0 in part 0, 5 in part 1
    }

    #[test]
    fn appended_vertices_are_isolated_until_patched() {
        let hg = sample();
        let mut adj = NeighborAdjacency::build(&hg, AdjacencyBudget::Unbounded);
        adj.ensure_vertices(9);
        assert_eq!(adj.num_vertices(), 9);
        assert!(!adj.is_hub(8));
        assert_eq!(adj.neighbors(8), Some(&[][..]));
        assert_eq!(adj.distinct_degree(8), 0);
        adj.patch_vertex(8, vec![0, 1]);
        assert_eq!(adj.neighbors(8), Some(&[0, 1][..]));
        // ensure_vertices never shrinks.
        adj.ensure_vertices(2);
        assert_eq!(adj.num_vertices(), 9);
    }

    #[test]
    fn patches_crossing_the_cutover_update_hub_accounting() {
        let hg = sample();
        let mut adj = NeighborAdjacency::build(&hg, AdjacencyBudget::DegreeCutoff(2));
        assert_eq!(adj.num_hubs(), 1); // vertex 2, distinct degree 3
                                       // Promote vertex 0 past the cutover: hub count rises, list drops.
        adj.patch_vertex(0, vec![1, 2, 3, 4]);
        assert!(adj.is_hub(0));
        assert_eq!(adj.num_hubs(), 2);
        assert_eq!(adj.neighbors(0), None);
        assert_eq!(adj.distinct_degree(0), 4);
        // Demote vertex 2 below it: hub count falls back.
        adj.patch_vertex(2, vec![0]);
        assert!(!adj.is_hub(2));
        assert_eq!(adj.num_hubs(), 1);
        assert_eq!(adj.neighbors(2), Some(&[0][..]));
        // Hub queries route through the traversal fallback and stay exact
        // against the *current* hypergraph passed in.
        let part = Partition::from_assignment(vec![0, 1, 1, 0, 0, 1, 0], 2).unwrap();
        let mut fallback = None;
        let mut counts = Vec::new();
        adj.neighbor_partition_counts(&hg, &part, 0, &mut fallback, &mut counts);
        assert!(fallback.is_some());
        assert_eq!(counts.iter().sum::<u32>(), 2); // hg still has {1, 2}
    }
}
