//! Shared worker-pool primitives for lock-free chunked parallelism.
//!
//! The work-stealing execution strategy of the restreaming engine and the
//! parallel coarsening matcher of the multilevel baseline share the same
//! skeleton: a slice of work items, a team of scoped threads, and a shared
//! atomic cursor handing out fixed-size chunks so fast workers naturally
//! *steal* the share a slow worker never claims. This module holds the two
//! pieces of that skeleton — [`ChunkCursor`] (the lock-free chunk
//! dispenser) and [`run_on_workers`] (spawn once, run the calling thread
//! as worker 0, join) — so both consumers spawn threads once per batch
//! instead of once per synchronisation window.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// A lock-free dispenser of fixed-size index chunks over `0..len`.
///
/// Every worker loops on [`ChunkCursor::claim`]; the single
/// `fetch_add` per claim is the only synchronisation, so the schedule is
/// self-balancing: a worker stalled on a heavy chunk simply claims fewer
/// chunks while its peers drain the rest.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// Creates a cursor over `0..len` handing out chunks of (at most)
    /// `chunk` indices. A zero `chunk` is rounded up to 1.
    pub fn new(len: usize, chunk: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` when the range is exhausted. The
    /// final chunk may be shorter than the configured size.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// Total number of indices the cursor dispenses.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cursor has nothing to dispense.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Runs `worker(id)` on `num_threads` workers: ids `1..num_threads` on
/// freshly spawned scoped threads and id `0` on the calling thread, then
/// joins. With `num_threads <= 1` no thread is spawned at all — the
/// closure just runs inline, so single-worker callers pay nothing.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn run_on_workers<F>(num_threads: usize, worker: F)
where
    F: Fn(usize) + Sync,
{
    if num_threads <= 1 {
        worker(0);
        return;
    }
    thread::scope(|scope| {
        let handles: Vec<_> = (1..num_threads)
            .map(|id| {
                let worker = &worker;
                scope.spawn(move || worker(id))
            })
            .collect();
        worker(0);
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn cursor_covers_every_index_exactly_once() {
        let cursor = ChunkCursor::new(1003, 64);
        let mut seen = vec![false; 1003];
        while let Some(range) = cursor.claim() {
            for i in range {
                assert!(!seen[i], "index {i} dispensed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(cursor.claim().is_none());
    }

    #[test]
    fn cursor_handles_empty_and_tiny_ranges() {
        let empty = ChunkCursor::new(0, 16);
        assert!(empty.is_empty());
        assert!(empty.claim().is_none());
        let tiny = ChunkCursor::new(3, 0); // chunk rounded up to 1
        assert_eq!(tiny.len(), 3);
        assert_eq!(tiny.claim(), Some(0..1));
        assert_eq!(tiny.claim(), Some(1..2));
        assert_eq!(tiny.claim(), Some(2..3));
        assert!(tiny.claim().is_none());
    }

    #[test]
    fn workers_drain_a_shared_cursor_completely() {
        for threads in [1usize, 2, 4, 8] {
            let cursor = ChunkCursor::new(10_000, 32);
            let sum = AtomicU64::new(0);
            run_on_workers(threads, |_id| {
                while let Some(range) = cursor.claim() {
                    let local: u64 = range.map(|i| i as u64).sum();
                    sum.fetch_add(local, Ordering::Relaxed);
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 9_999 * 10_000 / 2);
        }
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        // id 0 must run on the calling thread when num_threads == 1.
        let caller = thread::current().id();
        // The Fn + Sync bound forbids capturing &mut; go through a Mutex.
        let slot = std::sync::Mutex::new(None);
        run_on_workers(1, |id| {
            *slot.lock().unwrap() = Some((id, thread::current().id()));
        });
        let (id, tid) = slot.into_inner().unwrap().unwrap();
        assert_eq!(id, 0);
        assert_eq!(tid, caller);
    }
}
