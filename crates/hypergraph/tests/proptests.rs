//! Property-based tests for the hypergraph substrate.

use proptest::prelude::*;

use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_hypergraph::io::hmetis;
use hyperpraw_hypergraph::metrics;
use hyperpraw_hypergraph::{Hypergraph, HypergraphBuilder, Partition};

/// Strategy: a small random hypergraph description (list of hyperedges).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    // Up to 12 hyperedges over up to 20 vertices, cardinality 1..=6.
    prop::collection::vec(prop::collection::vec(0u32..20, 1..6), 1..12).prop_map(|edges| {
        let mut b = HypergraphBuilder::new(20);
        for pins in edges {
            b.add_hyperedge(pins);
        }
        b.build()
    })
}

/// Strategy: a hypergraph together with a valid partition over it.
fn arb_partitioned() -> impl Strategy<Value = (Hypergraph, Partition)> {
    (arb_hypergraph(), 1u32..6).prop_flat_map(|(hg, p)| {
        let n = hg.num_vertices();
        (
            Just(hg),
            prop::collection::vec(0u32..p, n..=n)
                .prop_map(move |a| Partition::from_assignment(a, p).expect("assignment in range")),
        )
    })
}

proptest! {
    #[test]
    fn built_hypergraphs_always_validate(hg in arb_hypergraph()) {
        prop_assert!(hg.validate().is_ok());
    }

    #[test]
    fn pin_count_is_consistent_between_directions(hg in arb_hypergraph()) {
        let via_edges: usize = hg.hyperedges().map(|e| hg.cardinality(e)).sum();
        let via_vertices: usize = hg.vertices().map(|v| hg.degree(v)).sum();
        prop_assert_eq!(via_edges, via_vertices);
        prop_assert_eq!(via_edges, hg.num_pins());
    }

    #[test]
    fn hgr_round_trip_preserves_structure(hg in arb_hypergraph()) {
        let mut buf = Vec::new();
        hmetis::write_hgr(&hg, &mut buf).unwrap();
        let back = hmetis::read_hgr(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_vertices(), hg.num_vertices());
        prop_assert_eq!(back.num_hyperedges(), hg.num_hyperedges());
        for e in hg.hyperedges() {
            prop_assert_eq!(back.pins(e), hg.pins(e));
        }
    }

    #[test]
    fn soed_bounds_hold(
        (hg, part) in arb_partitioned()
    ) {
        let cut = metrics::hyperedge_cut(&hg, &part);
        let soed = metrics::soed(&hg, &part);
        // Every cut hyperedge contributes at least 2 and at most p to SOED.
        prop_assert!(soed >= 2 * cut);
        prop_assert!(soed <= cut * part.num_parts() as u64);
        // Connectivity-minus-one relates to SOED: soed - cut = conn-1 restricted
        // to cut edges; for unit weights conn-1 counts uncut edges as zero.
        let conn = metrics::connectivity_minus_one(&hg, &part);
        prop_assert!((conn - (soed as f64 - cut as f64)).abs() < 1e-9);
    }

    #[test]
    fn imbalance_is_at_least_one_and_at_most_p(
        (hg, part) in arb_partitioned()
    ) {
        if hg.num_vertices() == part.num_vertices() && hg.num_vertices() > 0 {
            let imb = part.imbalance(&hg).unwrap();
            prop_assert!(imb >= 1.0 - 1e-9);
            prop_assert!(imb <= part.num_parts() as f64 + 1e-9);
        }
    }

    #[test]
    fn relabelling_partitions_preserves_cut_metrics(
        (hg, part) in arb_partitioned()
    ) {
        let p = part.num_parts();
        // Reverse the partition labels.
        let relabelled: Vec<u32> = part
            .assignment()
            .iter()
            .map(|&x| p - 1 - x)
            .collect();
        let part2 = Partition::from_assignment(relabelled, p).unwrap();
        prop_assert_eq!(
            metrics::hyperedge_cut(&hg, &part),
            metrics::hyperedge_cut(&hg, &part2)
        );
        prop_assert_eq!(metrics::soed(&hg, &part), metrics::soed(&hg, &part2));
    }

    #[test]
    fn single_partition_has_no_cut(hg in arb_hypergraph()) {
        let part = Partition::all_in_one(hg.num_vertices(), 1);
        prop_assert_eq!(metrics::hyperedge_cut(&hg, &part), 0);
        prop_assert_eq!(metrics::soed(&hg, &part), 0);
    }

    #[test]
    fn random_generator_respects_cardinality_bounds(
        n in 10usize..60,
        e in 1usize..30,
        min in 2usize..4,
        extra in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = RandomConfig {
            num_vertices: n,
            num_hyperedges: e,
            cardinality: CardinalityDist::Uniform { min, max: min + extra },
            seed,
            name: String::new(),
        };
        let hg = random_hypergraph(&cfg);
        prop_assert!(hg.validate().is_ok());
        for edge in hg.hyperedges() {
            let c = hg.cardinality(edge);
            prop_assert!(c >= min.min(n));
            prop_assert!(c <= (min + extra).min(n));
        }
    }
}
