//! Configuration of the multilevel partitioner.

/// Tuning parameters of the multilevel recursive-bisection partitioner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultilevelConfig {
    /// Allowed total imbalance, expressed like the paper's tolerance:
    /// `max_k W(k) / avg_k W(k) <= imbalance_tolerance` (e.g. 1.1 = 10%).
    pub imbalance_tolerance: f64,
    /// Stop coarsening when the hypergraph has at most this many vertices.
    pub coarsen_until: usize,
    /// Upper bound on the number of coarsening levels (safety valve for
    /// hypergraphs that stop contracting).
    pub max_levels: usize,
    /// Number of randomised initial-partitioning trials; the best feasible
    /// bisection is kept.
    pub initial_trials: usize,
    /// Number of FM refinement passes per level.
    pub fm_passes: usize,
    /// RNG seed (the partitioner is deterministic for a given seed).
    pub seed: u64,
    /// Worker threads for the coarsening matching loop. At `1` the matching
    /// is sequential and deterministic per seed; above `1` vertices race to
    /// claim partners through atomic compare-and-swap, which is faster but
    /// may pair vertices differently from run to run.
    pub threads: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            imbalance_tolerance: 1.1,
            coarsen_until: 200,
            max_levels: 25,
            initial_trials: 8,
            fm_passes: 4,
            seed: 0,
            threads: 1,
        }
    }
}

impl MultilevelConfig {
    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the imbalance tolerance.
    pub fn with_imbalance_tolerance(mut self, tol: f64) -> Self {
        assert!(tol >= 1.0, "imbalance tolerance must be >= 1.0");
        self.imbalance_tolerance = tol;
        self
    }

    /// Overrides the coarsening worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one coarsening thread");
        self.threads = threads;
        self
    }

    /// The maximum part weight allowed for a bisection of total weight
    /// `total` into parts with target fractions `fraction` and
    /// `1 - fraction`.
    ///
    /// The paper's imbalance definition (`max/avg <= tol`) translates, for a
    /// two-way split with target fraction `f`, to
    /// `W(part) <= tol * f * total`.
    pub fn max_part_weight(&self, total: f64, fraction: f64) -> f64 {
        self.imbalance_tolerance * fraction * total
    }

    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.imbalance_tolerance < 1.0 {
            return Err("imbalance tolerance below 1.0 is unsatisfiable".into());
        }
        if self.coarsen_until == 0 {
            return Err("coarsening must stop at a non-empty hypergraph".into());
        }
        if self.initial_trials == 0 {
            return Err("need at least one initial-partitioning trial".into());
        }
        if self.threads == 0 {
            return Err("need at least one coarsening thread".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MultilevelConfig::default();
        assert!(c.imbalance_tolerance > 1.0);
        assert!(c.coarsen_until > 0);
        assert!(c.initial_trials > 0);
        assert!(c.fm_passes > 0);
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = MultilevelConfig::default()
            .with_seed(42)
            .with_imbalance_tolerance(1.05);
        assert_eq!(c.seed, 42);
        assert_eq!(c.imbalance_tolerance, 1.05);
    }

    #[test]
    fn max_part_weight_scales_with_fraction() {
        let c = MultilevelConfig::default().with_imbalance_tolerance(1.1);
        let even = c.max_part_weight(100.0, 0.5);
        assert!((even - 55.0).abs() < 1e-12);
        let third = c.max_part_weight(90.0, 1.0 / 3.0);
        assert!((third - 33.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = ">= 1.0")]
    fn tolerance_below_one_is_rejected() {
        MultilevelConfig::default().with_imbalance_tolerance(0.9);
    }

    #[test]
    fn zero_coarsening_threads_fail_validation() {
        assert!(MultilevelConfig::default().validate().is_ok());
        let c = MultilevelConfig {
            threads: 0,
            ..MultilevelConfig::default()
        };
        assert!(c.validate().is_err());
        assert_eq!(MultilevelConfig::default().with_threads(4).threads, 4);
    }
}
