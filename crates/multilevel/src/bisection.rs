//! The multilevel bisection driver: coarsen → initial partition → project
//! and refine back up the hierarchy.

use hyperpraw_hypergraph::Hypergraph;

use crate::coarsen::{coarsen_hierarchy, project_assignment};
use crate::initial::{best_initial_bisection, Bisection};
use crate::refine::fm_refine;
use crate::MultilevelConfig;

/// Bisects a hypergraph with the multilevel scheme, targeting `fraction` of
/// the total vertex weight on side 0 and the configured imbalance tolerance.
pub fn multilevel_bisection(
    hg: &Hypergraph,
    config: &MultilevelConfig,
    fraction: f64,
) -> Bisection {
    let total = hg.total_vertex_weight();
    let max_weights = [
        config.max_part_weight(total, fraction),
        config.max_part_weight(total, 1.0 - fraction),
    ];

    // 1. Coarsen.
    let hierarchy = coarsen_hierarchy(hg, config);
    let coarsest: &Hypergraph = hierarchy.last().map(|l| &l.hypergraph).unwrap_or(hg);

    // 2. Initial partition of the coarsest hypergraph.
    let initial = best_initial_bisection(coarsest, config, fraction);
    let mut bisection = fm_refine(coarsest, initial, max_weights, config.fm_passes);

    // 3. Uncoarsen: project through each level and refine.
    for level_index in (0..hierarchy.len()).rev() {
        let level = &hierarchy[level_index];
        let finer: &Hypergraph = if level_index == 0 {
            hg
        } else {
            &hierarchy[level_index - 1].hypergraph
        };
        let projected = project_assignment(&level.fine_to_coarse, &bisection.assignment);
        let projected = Bisection::evaluate(finer, projected);
        bisection = fm_refine(finer, projected, max_weights, config.fm_passes);
    }

    bisection
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{
        mesh_hypergraph, random_hypergraph, MeshConfig, RandomConfig,
    };
    use hyperpraw_hypergraph::{metrics, Partition};

    #[test]
    fn bisection_of_a_mesh_is_balanced_and_low_cut() {
        let hg = mesh_hypergraph(&MeshConfig::new(2000, 8));
        let config = MultilevelConfig::default();
        let bis = multilevel_bisection(&hg, &config, 0.5);
        let total = hg.total_vertex_weight();
        assert!(bis.part_weights[0] <= config.max_part_weight(total, 0.5) + 1e-9);
        assert!(bis.part_weights[1] <= config.max_part_weight(total, 0.5) + 1e-9);
        // A mesh of 2000 vertices with ~8-pin local stencils has a small
        // surface-to-volume ratio: the cut should be far below the edge count.
        assert!(
            (bis.cut as f64) < 0.25 * hg.num_hyperedges() as f64,
            "cut {} too large for a mesh",
            bis.cut
        );
    }

    #[test]
    fn multilevel_beats_flat_random_bisection() {
        let hg = mesh_hypergraph(&MeshConfig::new(3000, 10));
        let config = MultilevelConfig::default();
        let ml = multilevel_bisection(&hg, &config, 0.5);
        let random = crate::initial::random_bisection(&hg, 0.5, 1);
        assert!(
            ml.cut < 0.5 * random.cut,
            "multilevel cut {} should be well below random {}",
            ml.cut,
            random.cut
        );
    }

    #[test]
    fn bisection_matches_partition_metrics() {
        let hg = random_hypergraph(&RandomConfig::with_avg_cardinality(600, 400, 6.0, 3));
        let bis = multilevel_bisection(&hg, &MultilevelConfig::default(), 0.5);
        let part = Partition::from_assignment(bis.assignment.clone(), 2).unwrap();
        let cut = metrics::weighted_hyperedge_cut(&hg, &part);
        assert!((cut - bis.cut).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let hg = mesh_hypergraph(&MeshConfig::new(800, 8));
        let config = MultilevelConfig::default().with_seed(5);
        let a = multilevel_bisection(&hg, &config, 0.5);
        let b = multilevel_bisection(&hg, &config, 0.5);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn small_hypergraphs_skip_coarsening_gracefully() {
        let hg = mesh_hypergraph(&MeshConfig::new(50, 6));
        let config = MultilevelConfig {
            coarsen_until: 200,
            ..MultilevelConfig::default()
        };
        let bis = multilevel_bisection(&hg, &config, 0.5);
        assert_eq!(bis.assignment.len(), 50);
    }
}
