//! Recursive bisection to k parts.

use hyperpraw_hypergraph::{Hypergraph, HypergraphBuilder, Partition, VertexId};

use crate::bisection::multilevel_bisection;
use crate::MultilevelConfig;

/// Extracts the sub-hypergraph induced by a vertex subset. Hyperedges are
/// restricted to the subset; restrictions with fewer than two pins are
/// dropped (they can never be cut). Returns the sub-hypergraph together with
/// the map from its local vertex ids back to the original ids.
fn induced_subhypergraph(hg: &Hypergraph, vertices: &[VertexId]) -> (Hypergraph, Vec<VertexId>) {
    let mut local_of = vec![u32::MAX; hg.num_vertices()];
    for (local, &v) in vertices.iter().enumerate() {
        local_of[v as usize] = local as u32;
    }
    let mut builder = HypergraphBuilder::new(vertices.len());
    builder.name(format!("{}-sub", hg.name()));
    let mut pins: Vec<VertexId> = Vec::new();
    for e in hg.hyperedges() {
        pins.clear();
        for &v in hg.pins(e) {
            let l = local_of[v as usize];
            if l != u32::MAX {
                pins.push(l);
            }
        }
        if pins.len() >= 2 {
            builder.add_weighted_hyperedge(pins.iter().copied(), hg.edge_weight(e));
        }
    }
    builder.ensure_vertices(vertices.len());
    for (local, &v) in vertices.iter().enumerate() {
        builder.set_vertex_weight(local as u32, hg.vertex_weight(v));
    }
    (builder.build(), vertices.to_vec())
}

/// Recursively partitions `vertices` of `hg` into parts
/// `first_part..first_part + k`, writing the result into `assignment`.
fn recurse(
    hg: &Hypergraph,
    vertices: Vec<VertexId>,
    k: u32,
    first_part: u32,
    config: &MultilevelConfig,
    depth: u64,
    assignment: &mut [u32],
) {
    if k <= 1 || vertices.len() <= 1 {
        for &v in &vertices {
            assignment[v as usize] = first_part;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let fraction = k0 as f64 / k as f64;

    let (sub, local_to_global) = induced_subhypergraph(hg, &vertices);
    // Split the overall imbalance budget across the remaining bisection
    // levels so the per-level deviations do not compound past the tolerance.
    let remaining_levels = (k as f64).log2().ceil().max(1.0);
    let level_tolerance = config.imbalance_tolerance.powf(1.0 / remaining_levels);
    let sub_config = MultilevelConfig {
        imbalance_tolerance: level_tolerance,
        seed: config
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(depth)
            .wrapping_add(first_part as u64),
        ..*config
    };
    let bisection = multilevel_bisection(&sub, &sub_config, fraction);

    let mut left: Vec<VertexId> = Vec::new();
    let mut right: Vec<VertexId> = Vec::new();
    for (local, &side) in bisection.assignment.iter().enumerate() {
        let global = local_to_global[local];
        if side == 0 {
            left.push(global);
        } else {
            right.push(global);
        }
    }
    recurse(hg, left, k0, first_part, config, depth + 1, assignment);
    recurse(
        hg,
        right,
        k1,
        first_part + k0,
        config,
        depth + 1,
        assignment,
    );
}

/// Partitions a hypergraph into `k` parts by multilevel recursive bisection —
/// the same scheme as Zoltan's PHG used as the paper's baseline.
pub fn recursive_bisection(hg: &Hypergraph, k: u32, config: &MultilevelConfig) -> Partition {
    assert!(k >= 1, "k must be at least 1");
    let mut assignment = vec![0u32; hg.num_vertices()];
    let vertices: Vec<VertexId> = hg.vertices().collect();
    recurse(hg, vertices, k, 0, config, 0, &mut assignment);
    Partition::from_assignment(assignment, k)
        .expect("recursive bisection produced a valid partition")
}

/// A convenience wrapper bundling the configuration, exposing the same
/// `partition(hg, k)` shape as the streaming partitioners in
/// `hyperpraw-core`.
#[derive(Clone, Debug, Default)]
pub struct MultilevelPartitioner {
    config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }

    /// Partitions `hg` into `k` parts.
    pub fn partition(&self, hg: &Hypergraph, k: u32) -> Partition {
        recursive_bisection(hg, k, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{
        mesh_hypergraph, random_hypergraph, MeshConfig, RandomConfig,
    };
    use hyperpraw_hypergraph::metrics;

    #[test]
    fn partitions_have_k_parts_and_cover_all_vertices() {
        let hg = mesh_hypergraph(&MeshConfig::new(600, 8));
        for k in [1u32, 2, 3, 5, 8] {
            let part = recursive_bisection(&hg, k, &MultilevelConfig::default());
            assert_eq!(part.num_parts(), k);
            assert_eq!(part.num_vertices(), 600);
            if k > 1 {
                assert_eq!(part.used_parts(), k as usize, "k={k} left empty parts");
            }
        }
    }

    #[test]
    fn imbalance_respects_the_tolerance_for_power_of_two_k() {
        let hg = mesh_hypergraph(&MeshConfig::new(1024, 8));
        let config = MultilevelConfig::default().with_imbalance_tolerance(1.10);
        let part = recursive_bisection(&hg, 8, &config);
        let imbalance = part.imbalance(&hg).unwrap();
        // Each bisection level can use the full tolerance, so allow slack.
        assert!(
            imbalance <= 1.25,
            "imbalance {imbalance} too large for tolerance 1.10"
        );
    }

    #[test]
    fn non_power_of_two_parts_are_reasonably_balanced() {
        let hg = mesh_hypergraph(&MeshConfig::new(900, 8));
        let part = recursive_bisection(&hg, 6, &MultilevelConfig::default());
        let sizes = part.part_sizes();
        assert!(
            *sizes.iter().min().unwrap() > 0,
            "sizes {sizes:?} has empty part"
        );
        // The paper's imbalance metric (max/avg) must stay near the tolerance.
        let imbalance = part.imbalance(&hg).unwrap();
        assert!(
            imbalance <= 1.3,
            "imbalance {imbalance} too large, sizes {sizes:?}"
        );
    }

    #[test]
    fn mesh_cut_is_much_lower_than_round_robin() {
        let hg = mesh_hypergraph(&MeshConfig::new(1500, 10));
        let ml = recursive_bisection(&hg, 8, &MultilevelConfig::default());
        let rr = Partition::round_robin(hg.num_vertices(), 8);
        let ml_cut = metrics::hyperedge_cut(&hg, &ml);
        let rr_cut = metrics::hyperedge_cut(&hg, &rr);
        assert!(
            (ml_cut as f64) < 0.5 * rr_cut as f64,
            "multilevel cut {ml_cut} should be far below round robin {rr_cut}"
        );
    }

    #[test]
    fn works_on_unstructured_hypergraphs_too() {
        let hg = random_hypergraph(&RandomConfig::with_avg_cardinality(400, 300, 6.0, 1));
        let part = recursive_bisection(&hg, 4, &MultilevelConfig::default());
        assert_eq!(part.num_parts(), 4);
        assert!(part.imbalance(&hg).unwrap() <= 1.4);
    }

    #[test]
    fn single_part_assigns_everything_to_zero() {
        let hg = mesh_hypergraph(&MeshConfig::new(100, 6));
        let part = recursive_bisection(&hg, 1, &MultilevelConfig::default());
        assert!(part.assignment().iter().all(|&p| p == 0));
        assert_eq!(metrics::hyperedge_cut(&hg, &part), 0);
    }

    #[test]
    fn partitioner_wrapper_matches_free_function() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
        let config = MultilevelConfig::default().with_seed(9);
        let a = recursive_bisection(&hg, 4, &config);
        let b = MultilevelPartitioner::new(config).partition(&hg, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn induced_subhypergraph_preserves_weights_and_drops_external_pins() {
        let mut b = hyperpraw_hypergraph::HypergraphBuilder::new(6);
        b.add_weighted_hyperedge([0u32, 1, 2], 2.0);
        b.add_weighted_hyperedge([3u32, 4, 5], 3.0);
        b.add_weighted_hyperedge([2u32, 3], 1.0);
        b.set_vertex_weight(1, 4.0);
        let hg = b.build();
        let (sub, map) = super::induced_subhypergraph(&hg, &[0, 1, 2, 3]);
        assert_eq!(sub.num_vertices(), 4);
        // Edge {3,4,5} restricted to {3} has one pin -> dropped.
        assert_eq!(sub.num_hyperedges(), 2);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert_eq!(sub.vertex_weight(1), 4.0);
        let weights: Vec<f64> = sub.hyperedges().map(|e| sub.edge_weight(e)).collect();
        assert!(weights.contains(&2.0));
        assert!(weights.contains(&1.0));
    }
}
