//! Fiduccia–Mattheyses (FM) boundary refinement for bisections.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hyperpraw_hypergraph::{Hypergraph, VertexId};

use crate::initial::Bisection;

/// Total-ordering wrapper so f64 gains can live in a BinaryHeap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Gain(f64);

impl Eq for Gain {}

impl PartialOrd for Gain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Gain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The FM gain of moving `v` to the other side, given per-edge pin counts.
fn gain_of(hg: &Hypergraph, v: VertexId, side: u32, counts: &[[f64; 2]]) -> f64 {
    let mut gain = 0.0;
    let s = side as usize;
    let o = 1 - s;
    for &e in hg.incident_edges(v) {
        let w = hg.edge_weight(e);
        let c = counts[e as usize];
        // Edge becomes uncut when v is the last pin on its side.
        if c[s] == 1.0 && c[o] > 0.0 {
            gain += w;
        }
        // Edge becomes cut when it was entirely on v's side.
        if c[o] == 0.0 && c[s] > 1.0 {
            gain -= w;
        }
    }
    gain
}

/// One FM pass: vertices are tentatively moved in order of decreasing gain
/// (each vertex at most once, balance permitting, negative gains allowed for
/// hill climbing); the pass is then rolled back to the best prefix. Returns
/// the cut improvement achieved by the pass.
fn fm_pass(
    hg: &Hypergraph,
    assignment: &mut [u32],
    part_weights: &mut [f64; 2],
    max_weights: [f64; 2],
) -> f64 {
    let n = hg.num_vertices();
    // Pin counts per side for every hyperedge.
    let mut counts = vec![[0.0f64; 2]; hg.num_hyperedges()];
    for e in hg.hyperedges() {
        for &v in hg.pins(e) {
            counts[e as usize][assignment[v as usize] as usize] += 1.0;
        }
    }

    let mut locked = vec![false; n];
    let mut heap: BinaryHeap<(Gain, Reverse<u32>)> = BinaryHeap::new();
    let mut cached_gain = vec![0.0f64; n];
    for v in 0..n as u32 {
        let g = gain_of(hg, v, assignment[v as usize], &counts);
        cached_gain[v as usize] = g;
        heap.push((Gain(g), Reverse(v)));
    }

    let mut moves: Vec<VertexId> = Vec::new();
    let mut cumulative = 0.0f64;
    let mut best_cumulative = 0.0f64;
    let mut best_len = 0usize;

    while let Some((Gain(g), Reverse(v))) = heap.pop() {
        let vi = v as usize;
        if locked[vi] || (g - cached_gain[vi]).abs() > 1e-12 {
            continue; // stale entry
        }
        let from = assignment[vi];
        let to = 1 - from;
        let w = hg.vertex_weight(v);
        if part_weights[to as usize] + w > max_weights[to as usize] + 1e-9 {
            // Cannot move without violating balance; lock it for this pass.
            locked[vi] = true;
            continue;
        }
        // Apply the move.
        locked[vi] = true;
        assignment[vi] = to;
        part_weights[from as usize] -= w;
        part_weights[to as usize] += w;
        cumulative += g;
        moves.push(v);
        if cumulative > best_cumulative + 1e-12 {
            best_cumulative = cumulative;
            best_len = moves.len();
        }
        // Update edge counts and neighbour gains.
        for &e in hg.incident_edges(v) {
            counts[e as usize][from as usize] -= 1.0;
            counts[e as usize][to as usize] += 1.0;
            for &u in hg.pins(e) {
                let ui = u as usize;
                if !locked[ui] {
                    let g = gain_of(hg, u, assignment[ui], &counts);
                    if (g - cached_gain[ui]).abs() > 1e-12 {
                        cached_gain[ui] = g;
                        heap.push((Gain(g), Reverse(u)));
                    }
                }
            }
        }
    }

    // Roll back the moves after the best prefix.
    for &v in moves[best_len..].iter() {
        let vi = v as usize;
        let from = assignment[vi];
        let to = 1 - from;
        let w = hg.vertex_weight(v);
        assignment[vi] = to;
        part_weights[from as usize] -= w;
        part_weights[to as usize] += w;
    }
    best_cumulative
}

/// Refines a bisection in place with up to `passes` FM passes, stopping early
/// when a pass yields no improvement. Returns the refined bisection.
pub fn fm_refine(
    hg: &Hypergraph,
    mut bisection: Bisection,
    max_weights: [f64; 2],
    passes: usize,
) -> Bisection {
    let mut part_weights = bisection.part_weights;
    for _ in 0..passes.max(1) {
        let improvement = fm_pass(
            hg,
            &mut bisection.assignment,
            &mut part_weights,
            max_weights,
        );
        if improvement <= 1e-12 {
            break;
        }
    }
    Bisection::evaluate(hg, bisection.assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::{greedy_growing_bisection, random_bisection};
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::HypergraphBuilder;

    #[test]
    fn refinement_fixes_an_obviously_bad_split() {
        // Two cliques joined by a single bridge edge; a split that cuts both
        // cliques should be repaired to cut only the bridge.
        let mut b = HypergraphBuilder::new(8);
        b.add_hyperedge([0u32, 1, 2, 3]);
        b.add_hyperedge([4u32, 5, 6, 7]);
        b.add_hyperedge([3u32, 4]);
        let hg = b.build();
        // Bad split: interleaved.
        let bad = Bisection::evaluate(&hg, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert_eq!(bad.cut, 3.0);
        let refined = fm_refine(&hg, bad, [5.0, 5.0], 4);
        assert!(
            refined.cut <= 1.0,
            "refined cut {} should be <= 1",
            refined.cut
        );
        // Balance respected.
        assert!(refined.part_weights[0] <= 5.0 + 1e-9);
        assert!(refined.part_weights[1] <= 5.0 + 1e-9);
    }

    #[test]
    fn refinement_never_worsens_the_cut() {
        let hg = mesh_hypergraph(&MeshConfig::new(400, 8));
        let total = hg.total_vertex_weight();
        let max = [total * 0.55, total * 0.55];
        for seed in 0..5 {
            let initial = random_bisection(&hg, 0.5, seed);
            let refined = fm_refine(&hg, initial.clone(), max, 3);
            assert!(
                refined.cut <= initial.cut + 1e-9,
                "seed {seed}: cut went from {} to {}",
                initial.cut,
                refined.cut
            );
        }
    }

    #[test]
    fn refinement_respects_balance_limits() {
        let hg = mesh_hypergraph(&MeshConfig::new(300, 8));
        let total = hg.total_vertex_weight();
        let max = [total * 0.55, total * 0.55];
        let initial = greedy_growing_bisection(&hg, 0.5, 2);
        let refined = fm_refine(&hg, initial, max, 4);
        assert!(refined.part_weights[0] <= max[0] + 1e-9);
        assert!(refined.part_weights[1] <= max[1] + 1e-9);
    }

    #[test]
    fn refinement_substantially_improves_random_splits_on_meshes() {
        let hg = mesh_hypergraph(&MeshConfig::new(1000, 8));
        let total = hg.total_vertex_weight();
        let max = [total * 0.55, total * 0.55];
        let initial = random_bisection(&hg, 0.5, 7);
        let refined = fm_refine(&hg, initial.clone(), max, 6);
        assert!(
            refined.cut < 0.7 * initial.cut,
            "expected >30% improvement: {} -> {}",
            initial.cut,
            refined.cut
        );
    }

    #[test]
    fn already_perfect_bisection_is_left_alone() {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([2u32, 3]);
        let hg = b.build();
        let perfect = Bisection::evaluate(&hg, vec![0, 0, 1, 1]);
        let refined = fm_refine(&hg, perfect.clone(), [2.0, 2.0], 3);
        assert_eq!(refined.cut, 0.0);
        assert_eq!(refined.part_weights, perfect.part_weights);
    }
}
