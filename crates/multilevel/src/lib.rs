//! A multilevel recursive-bisection hypergraph partitioner — the baseline
//! the paper compares HyperPRAW against (Zoltan's PHG partitioner).
//!
//! Zoltan itself is a large C library; this crate implements the same
//! algorithmic recipe from scratch so the comparison can run anywhere:
//!
//! 1. **Coarsening** ([`coarsen`]) — repeated heavy-connectivity vertex
//!    matching contracts the hypergraph until it is small,
//! 2. **Initial partitioning** ([`initial`]) — greedy hypergraph growing
//!    bisects the coarsest hypergraph (best of several randomised trials),
//! 3. **Refinement** ([`refine`]) — FM-style boundary refinement with
//!    rollback improves the bisection as it is projected back up the
//!    hierarchy ([`bisection`]),
//! 4. **Recursive bisection** ([`recursive`]) — repeated bisection produces
//!    a k-way partition with a per-branch balance budget.
//!
//! Like Zoltan (and unlike HyperPRAW-aware) the partitioner is
//! *architecture-agnostic*: it minimises cut-based objectives
//! (connectivity−1) under a balance constraint and never looks at the
//! machine's cost matrix.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bisection;
pub mod coarsen;
pub mod config;
pub mod initial;
pub mod recursive;
pub mod refine;

pub use bisection::multilevel_bisection;
pub use config::MultilevelConfig;
pub use recursive::{recursive_bisection, MultilevelPartitioner};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::{
        multilevel_bisection, recursive_bisection, MultilevelConfig, MultilevelPartitioner,
    };
}
