//! Initial bisection of the coarsest hypergraph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperpraw_hypergraph::{Hypergraph, VertexId};

use crate::MultilevelConfig;

/// A two-way split of a hypergraph's vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct Bisection {
    /// 0/1 side per vertex.
    pub assignment: Vec<u32>,
    /// Weighted cut (connectivity−1 objective, which for a bisection equals
    /// the weighted hyperedge cut).
    pub cut: f64,
    /// Total vertex weight on each side.
    pub part_weights: [f64; 2],
}

impl Bisection {
    /// Recomputes cut and part weights from the assignment.
    pub fn evaluate(hg: &Hypergraph, assignment: Vec<u32>) -> Self {
        debug_assert_eq!(assignment.len(), hg.num_vertices());
        let mut cut = 0.0;
        for e in hg.hyperedges() {
            let pins = hg.pins(e);
            let first = assignment[pins[0] as usize];
            if pins.iter().any(|&v| assignment[v as usize] != first) {
                cut += hg.edge_weight(e);
            }
        }
        let mut part_weights = [0.0f64; 2];
        for v in hg.vertices() {
            part_weights[assignment[v as usize] as usize] += hg.vertex_weight(v);
        }
        Self {
            assignment,
            cut,
            part_weights,
        }
    }

    /// `true` when side 0 carries at most `max0` weight and side 1 at most
    /// `max1`.
    pub fn is_balanced(&self, max0: f64, max1: f64) -> bool {
        self.part_weights[0] <= max0 + 1e-9 && self.part_weights[1] <= max1 + 1e-9
    }
}

/// A random bisection targeting `fraction` of the total weight on side 0.
pub fn random_bisection(hg: &Hypergraph, fraction: f64, seed: u64) -> Bisection {
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment: Vec<u32> = (0..hg.num_vertices())
        .map(|_| {
            if rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                0
            } else {
                1
            }
        })
        .collect();
    Bisection::evaluate(hg, assignment)
}

/// Greedy hypergraph growing: starting from a random seed vertex, grow side 0
/// by repeatedly absorbing the unassigned vertex with the strongest
/// connectivity to side 0, until side 0 reaches `fraction` of the total
/// weight. This is the standard GHG initial partitioner used by multilevel
/// tools.
pub fn greedy_growing_bisection(hg: &Hypergraph, fraction: f64, seed: u64) -> Bisection {
    let n = hg.num_vertices();
    if n == 0 {
        return Bisection {
            assignment: Vec::new(),
            cut: 0.0,
            part_weights: [0.0, 0.0],
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = hg.total_vertex_weight();
    let target0 = total * fraction.clamp(0.05, 0.95);

    let mut assignment = vec![1u32; n];
    let mut in_zero = vec![false; n];
    // Connectivity score of each unassigned vertex towards side 0.
    let mut score = vec![0.0f64; n];
    let mut weight0 = 0.0f64;

    let seed_vertex = rng.gen_range(0..n) as VertexId;
    let mut frontier: Vec<VertexId> = vec![seed_vertex];

    while weight0 < target0 {
        // Pick the best frontier vertex (or a random unassigned vertex if the
        // frontier is exhausted, e.g. disconnected hypergraphs).
        let pick = frontier
            .iter()
            .copied()
            .filter(|&v| !in_zero[v as usize])
            .max_by(|&a, &b| score[a as usize].total_cmp(&score[b as usize]));
        let v = match pick {
            Some(v) => v,
            None => match (0..n as u32).find(|&v| !in_zero[v as usize]) {
                Some(v) => v,
                None => break,
            },
        };
        in_zero[v as usize] = true;
        assignment[v as usize] = 0;
        weight0 += hg.vertex_weight(v);
        frontier.retain(|&u| !in_zero[u as usize]);
        // Update scores of the neighbours of v.
        for &e in hg.incident_edges(v) {
            let card = hg.cardinality(e);
            if card < 2 {
                continue;
            }
            let w = hg.edge_weight(e) / (card as f64 - 1.0);
            for &u in hg.pins(e) {
                if !in_zero[u as usize] {
                    if score[u as usize] == 0.0 {
                        frontier.push(u);
                    }
                    score[u as usize] += w;
                }
            }
        }
    }
    Bisection::evaluate(hg, assignment)
}

/// Runs several randomised initial bisections (greedy growing plus a random
/// fallback) and returns the best: feasible solutions are preferred, then
/// lower cut, then better balance.
pub fn best_initial_bisection(
    hg: &Hypergraph,
    config: &MultilevelConfig,
    fraction: f64,
) -> Bisection {
    let total = hg.total_vertex_weight();
    let max0 = config.max_part_weight(total, fraction);
    let max1 = config.max_part_weight(total, 1.0 - fraction);
    let mut best: Option<(bool, f64, f64, Bisection)> = None;
    let trials = config.initial_trials.max(1);
    for t in 0..trials {
        let seed = config.seed.wrapping_mul(31).wrapping_add(t as u64);
        let candidate = if t == trials - 1 {
            random_bisection(hg, fraction, seed)
        } else {
            greedy_growing_bisection(hg, fraction, seed)
        };
        let feasible = candidate.is_balanced(max0, max1);
        let imbalance = candidate.part_weights[0].max(candidate.part_weights[1]);
        let key = (feasible, candidate.cut, imbalance);
        let better = match &best {
            None => true,
            Some((bf, bc, bi, _)) => {
                (key.0 && !bf)
                    || (key.0 == *bf && key.1 < *bc - 1e-12)
                    || (key.0 == *bf && (key.1 - bc).abs() <= 1e-12 && key.2 < *bi)
            }
        };
        if better {
            best = Some((feasible, candidate.cut, imbalance, candidate));
        }
    }
    best.expect("at least one trial").3
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};
    use hyperpraw_hypergraph::HypergraphBuilder;

    fn mesh(n: usize) -> Hypergraph {
        mesh_hypergraph(&MeshConfig::new(n, 8))
    }

    #[test]
    fn evaluate_counts_cut_edges() {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([2u32, 3]);
        b.add_hyperedge([1u32, 2]);
        let hg = b.build();
        let bis = Bisection::evaluate(&hg, vec![0, 0, 1, 1]);
        assert_eq!(bis.cut, 1.0);
        assert_eq!(bis.part_weights, [2.0, 2.0]);
        assert!(bis.is_balanced(2.0, 2.0));
        assert!(!bis.is_balanced(1.0, 3.0));
    }

    #[test]
    fn greedy_growing_reaches_the_target_fraction() {
        let hg = mesh(500);
        let bis = greedy_growing_bisection(&hg, 0.5, 3);
        let total = hg.total_vertex_weight();
        let frac0 = bis.part_weights[0] / total;
        assert!(
            (0.4..=0.6).contains(&frac0),
            "side-0 fraction {frac0} should be near 0.5"
        );
    }

    #[test]
    fn greedy_growing_beats_random_on_meshes() {
        let hg = mesh(1000);
        let greedy = greedy_growing_bisection(&hg, 0.5, 1);
        let random = random_bisection(&hg, 0.5, 1);
        assert!(
            greedy.cut < random.cut,
            "greedy cut {} should beat random cut {}",
            greedy.cut,
            random.cut
        );
    }

    #[test]
    fn best_initial_bisection_is_feasible_on_meshes() {
        let hg = mesh(800);
        let config = MultilevelConfig::default();
        let bis = best_initial_bisection(&hg, &config, 0.5);
        let total = hg.total_vertex_weight();
        let max = config.max_part_weight(total, 0.5);
        assert!(bis.is_balanced(max, max), "weights {:?}", bis.part_weights);
    }

    #[test]
    fn asymmetric_fractions_are_respected() {
        let hg = mesh(600);
        let bis = greedy_growing_bisection(&hg, 0.25, 9);
        let frac0 = bis.part_weights[0] / hg.total_vertex_weight();
        assert!(
            (0.18..=0.35).contains(&frac0),
            "side-0 fraction {frac0} should be near 0.25"
        );
    }

    #[test]
    fn disconnected_hypergraphs_are_still_covered() {
        // Two disjoint cliques; the grower must jump between components.
        let mut b = HypergraphBuilder::new(8);
        b.add_hyperedge([0u32, 1, 2, 3]);
        b.add_hyperedge([4u32, 5, 6, 7]);
        let hg = b.build();
        let bis = greedy_growing_bisection(&hg, 0.5, 5);
        assert_eq!(bis.assignment.len(), 8);
        let zero = bis.assignment.iter().filter(|&&p| p == 0).count();
        assert_eq!(zero, 4);
        // A perfect split keeps both cliques whole.
        assert_eq!(bis.cut, 0.0);
    }

    #[test]
    fn empty_hypergraph_yields_empty_bisection() {
        let hg = HypergraphBuilder::new(0).build();
        let bis = greedy_growing_bisection(&hg, 0.5, 0);
        assert!(bis.assignment.is_empty());
        assert_eq!(bis.cut, 0.0);
    }
}
