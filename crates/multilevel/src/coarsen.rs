//! Coarsening by heavy-connectivity vertex matching.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use hyperpraw_hypergraph::{run_on_workers, ChunkCursor, Hypergraph, HypergraphBuilder, VertexId};

use crate::MultilevelConfig;

const UNMATCHED: u32 = u32::MAX;

/// Vertices handed out per claim when matching in parallel.
const MATCH_CHUNK: usize = 128;

/// One coarsening step: the contracted hypergraph plus the projection map.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted hypergraph.
    pub hypergraph: Hypergraph,
    /// For every vertex of the *finer* hypergraph, the coarse vertex it was
    /// contracted into.
    pub fine_to_coarse: Vec<VertexId>,
}

/// Performs one round of heavy-connectivity matching and contraction.
///
/// Two vertices are good contraction candidates when they share many
/// hyperedges, weighted towards small hyperedges (`w(e) / (|e| − 1)`), the
/// same heuristic used by PaToH/Zoltan ("heavy connectivity" / inner-product
/// matching). Vertices are visited in random order; each unmatched vertex is
/// paired with its best unmatched neighbour.
pub fn coarsen_once(hg: &Hypergraph, seed: u64) -> CoarseLevel {
    let n = hg.num_vertices();
    let mut mate = vec![UNMATCHED; n];
    let order = shuffled_order(n, seed);

    // Scratch accumulation of connectivity scores keyed by neighbour.
    let mut score_epoch = vec![0u32; n];
    let mut score_val = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut epoch = 0u32;

    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        epoch += 1;
        touched.clear();
        for &e in hg.incident_edges(v) {
            let card = hg.cardinality(e);
            if card < 2 {
                continue;
            }
            let w = hg.edge_weight(e) / (card as f64 - 1.0);
            for &u in hg.pins(e) {
                if u == v || mate[u as usize] != UNMATCHED {
                    continue;
                }
                if score_epoch[u as usize] != epoch {
                    score_epoch[u as usize] = epoch;
                    score_val[u as usize] = 0.0;
                    touched.push(u);
                }
                score_val[u as usize] += w;
            }
        }
        // Pick the best-scoring unmatched neighbour (ties broken by id for
        // determinism).
        let mut best: Option<(f64, u32)> = None;
        for &u in &touched {
            let s = score_val[u as usize];
            match best {
                None => best = Some((s, u)),
                Some((bs, bu)) => {
                    if s > bs + 1e-12 || ((s - bs).abs() <= 1e-12 && u < bu) {
                        best = Some((s, u));
                    }
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => {
                mate[v as usize] = v; // stays alone
            }
        }
    }

    contract(hg, &mate)
}

/// Like [`coarsen_once`], but the matching loop runs on `threads` workers
/// claiming chunks of the shuffled visit order from a shared cursor.
///
/// Workers race to pair vertices through compare-and-swap on an atomic mate
/// array: a vertex first claims *itself* (so no one else can grab it), then
/// tries its candidate partners best-score-first; the first partner whose
/// slot it wins becomes its mate, and a vertex that wins no partner stays a
/// singleton. The contraction that follows the matching is identical to the
/// sequential path. At `threads <= 1` this *is* [`coarsen_once`] —
/// bit-identical output — since a single worker can never lose a race.
pub fn coarsen_once_parallel(hg: &Hypergraph, seed: u64, threads: usize) -> CoarseLevel {
    if threads <= 1 {
        return coarsen_once(hg, seed);
    }
    let n = hg.num_vertices();
    let order = shuffled_order(n, seed);
    let mate: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let cursor = ChunkCursor::new(n, MATCH_CHUNK);

    run_on_workers(threads, |_worker| {
        // Per-worker scratch, mirroring the sequential epoch trick.
        let mut score_epoch = vec![0u32; n];
        let mut score_val = vec![0.0f64; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut epoch = 0u32;
        while let Some(range) = cursor.claim() {
            for i in range {
                let v = order[i];
                if mate[v as usize].load(Ordering::Relaxed) != UNMATCHED {
                    continue;
                }
                epoch += 1;
                touched.clear();
                for &e in hg.incident_edges(v) {
                    let card = hg.cardinality(e);
                    if card < 2 {
                        continue;
                    }
                    let w = hg.edge_weight(e) / (card as f64 - 1.0);
                    for &u in hg.pins(e) {
                        if u == v || mate[u as usize].load(Ordering::Relaxed) != UNMATCHED {
                            continue;
                        }
                        if score_epoch[u as usize] != epoch {
                            score_epoch[u as usize] = epoch;
                            score_val[u as usize] = 0.0;
                            touched.push(u);
                        }
                        score_val[u as usize] += w;
                    }
                }
                // Claim v for ourselves; if that fails another worker just
                // matched it and we move on.
                if mate[v as usize]
                    .compare_exchange(UNMATCHED, v, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Try partners best-first. Pairing finalises only when we
                // also win the partner's slot, so the mate array is always
                // symmetric-or-singleton once the workers join.
                touched.sort_unstable_by(|&a, &b| {
                    score_val[b as usize]
                        .partial_cmp(&score_val[a as usize])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                for &u in &touched {
                    if mate[u as usize]
                        .compare_exchange(UNMATCHED, v, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        mate[v as usize].store(u, Ordering::Relaxed);
                        break;
                    }
                }
                // All candidates lost: mate[v] still holds v — a singleton.
            }
        }
    });

    let mate: Vec<u32> = mate.into_iter().map(AtomicU32::into_inner).collect();
    contract(hg, &mate)
}

/// Deterministic shuffled visit order shared by both matching paths.
fn shuffled_order(n: usize, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order
}

/// Contracts `hg` along a complete mate array (every entry a symmetric pair
/// or a self-loop singleton) into the next coarser level.
fn contract(hg: &Hypergraph, mate: &[u32]) -> CoarseLevel {
    let n = hg.num_vertices();
    // Assign coarse ids: one per matched pair / singleton, in vertex order.
    let mut fine_to_coarse = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if fine_to_coarse[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        fine_to_coarse[v as usize] = next;
        if m != v && m != UNMATCHED {
            fine_to_coarse[m as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;

    // Aggregate vertex weights.
    let mut coarse_weights = vec![0.0f64; coarse_n];
    for v in 0..n {
        coarse_weights[fine_to_coarse[v] as usize] += hg.vertex_weight(v as VertexId);
    }

    // Project hyperedges, dropping those that collapse to a single coarse
    // vertex and merging identical nets (summing their weights).
    let mut nets: HashMap<Vec<VertexId>, f64> = HashMap::new();
    let mut pins: Vec<VertexId> = Vec::new();
    for e in hg.hyperedges() {
        pins.clear();
        pins.extend(hg.pins(e).iter().map(|&v| fine_to_coarse[v as usize]));
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        *nets.entry(pins.clone()).or_insert(0.0) += hg.edge_weight(e);
    }
    // Deterministic order for the builder.
    let mut net_list: Vec<(Vec<VertexId>, f64)> = nets.into_iter().collect();
    net_list.sort_unstable_by(|a, b| a.0.cmp(&b.0));

    let mut builder = HypergraphBuilder::with_capacity(coarse_n, net_list.len());
    builder.name(format!("{}-coarse", hg.name()));
    for (net, w) in net_list {
        builder.add_weighted_hyperedge(net, w);
    }
    builder.ensure_vertices(coarse_n);
    for (cv, &w) in coarse_weights.iter().enumerate() {
        builder.set_vertex_weight(cv as VertexId, w);
    }
    CoarseLevel {
        hypergraph: builder.build(),
        fine_to_coarse,
    }
}

/// Builds the full coarsening hierarchy. `levels[0]` contracts the input
/// hypergraph; `levels[i]` contracts `levels[i-1].hypergraph`. Coarsening
/// stops when the hypergraph is small enough, stops shrinking, or the level
/// limit is reached.
pub fn coarsen_hierarchy(hg: &Hypergraph, config: &MultilevelConfig) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = hg.clone();
    for level in 0..config.max_levels {
        if current.num_vertices() <= config.coarsen_until {
            break;
        }
        let next = coarsen_once_parallel(
            &current,
            config.seed.wrapping_add(level as u64),
            config.threads,
        );
        let shrink = next.hypergraph.num_vertices() as f64 / current.num_vertices() as f64;
        let done = shrink > 0.95;
        current = next.hypergraph.clone();
        levels.push(next);
        if done {
            break;
        }
    }
    levels
}

/// Projects a coarse-level assignment back to the finer level.
pub fn project_assignment(fine_to_coarse: &[VertexId], coarse_assignment: &[u32]) -> Vec<u32> {
    fine_to_coarse
        .iter()
        .map(|&cv| coarse_assignment[cv as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpraw_hypergraph::generators::{mesh_hypergraph, MeshConfig};

    fn mesh(n: usize) -> Hypergraph {
        mesh_hypergraph(&MeshConfig::new(n, 8))
    }

    #[test]
    fn one_round_roughly_halves_the_vertex_count() {
        let hg = mesh(1000);
        let level = coarsen_once(&hg, 1);
        let cn = level.hypergraph.num_vertices();
        assert!(cn < 700, "expected significant contraction, got {cn}");
        assert!(cn >= 500, "cannot contract below half, got {cn}");
        level.hypergraph.validate().unwrap();
    }

    #[test]
    fn total_vertex_weight_is_conserved() {
        let hg = mesh(500);
        let level = coarsen_once(&hg, 3);
        assert!((level.hypergraph.total_vertex_weight() - hg.total_vertex_weight()).abs() < 1e-9);
    }

    #[test]
    fn fine_to_coarse_is_a_valid_surjection() {
        let hg = mesh(300);
        let level = coarsen_once(&hg, 5);
        let cn = level.hypergraph.num_vertices() as u32;
        assert_eq!(level.fine_to_coarse.len(), hg.num_vertices());
        let mut seen = vec![false; cn as usize];
        for &cv in &level.fine_to_coarse {
            assert!(cv < cn);
            seen[cv as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every coarse vertex must be used");
        // At most two fine vertices map to each coarse vertex.
        let mut counts = vec![0usize; cn as usize];
        for &cv in &level.fine_to_coarse {
            counts[cv as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2));
    }

    #[test]
    fn collapsed_hyperedges_are_dropped() {
        // A triangle that will fully collapse when both pairs merge.
        let mut b = HypergraphBuilder::new(2);
        b.add_hyperedge([0u32, 1]);
        b.add_hyperedge([0u32, 1]);
        let hg = b.build();
        let level = coarsen_once(&hg, 0);
        // Vertices 0 and 1 are each other's only neighbour, so they merge and
        // both hyperedges vanish.
        assert_eq!(level.hypergraph.num_vertices(), 1);
        assert_eq!(level.hypergraph.num_hyperedges(), 0);
    }

    #[test]
    fn identical_nets_are_merged_with_summed_weight() {
        // Two distinct hyperedges that become identical after contraction.
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([0u32, 2]);
        b.add_hyperedge([1u32, 3]);
        b.add_hyperedge([0u32, 1]); // encourages 0-1 matching
        b.add_hyperedge([2u32, 3]); // encourages 2-3 matching
        let hg = b.build();
        let level = coarsen_once(&hg, 7);
        if level.hypergraph.num_vertices() == 2 {
            // {0,1} and {2,3} merged: the two cross edges {0,2} and {1,3}
            // become one identical coarse net carrying their summed weight,
            // while the intra-pair edges collapse and are dropped.
            assert_eq!(level.hypergraph.num_hyperedges(), 1);
            assert_eq!(level.hypergraph.edge_weight(0), 2.0);
        }
    }

    #[test]
    fn hierarchy_shrinks_until_threshold() {
        let hg = mesh(2000);
        let config = MultilevelConfig {
            coarsen_until: 100,
            ..MultilevelConfig::default()
        };
        let levels = coarsen_hierarchy(&hg, &config);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().hypergraph;
        assert!(
            coarsest.num_vertices() <= 200,
            "coarsest still has {} vertices",
            coarsest.num_vertices()
        );
        // Strictly decreasing sizes.
        let mut prev = hg.num_vertices();
        for l in &levels {
            assert!(l.hypergraph.num_vertices() < prev);
            prev = l.hypergraph.num_vertices();
        }
    }

    #[test]
    fn projection_round_trips_through_a_level() {
        let hg = mesh(400);
        let level = coarsen_once(&hg, 11);
        let coarse_n = level.hypergraph.num_vertices();
        let coarse_assignment: Vec<u32> = (0..coarse_n as u32).map(|v| v % 3).collect();
        let fine = project_assignment(&level.fine_to_coarse, &coarse_assignment);
        assert_eq!(fine.len(), hg.num_vertices());
        for (v, &part) in fine.iter().enumerate() {
            assert_eq!(part, coarse_assignment[level.fine_to_coarse[v] as usize]);
        }
    }

    #[test]
    fn coarsening_is_deterministic_per_seed() {
        let hg = mesh(600);
        let a = coarsen_once(&hg, 9);
        let b = coarsen_once(&hg, 9);
        assert_eq!(a.hypergraph, b.hypergraph);
        assert_eq!(a.fine_to_coarse, b.fine_to_coarse);
    }

    #[test]
    fn one_parallel_matching_thread_reproduces_the_sequential_result_exactly() {
        let hg = mesh(600);
        let seq = coarsen_once(&hg, 13);
        let par = coarsen_once_parallel(&hg, 13, 1);
        assert_eq!(seq.hypergraph, par.hypergraph);
        assert_eq!(seq.fine_to_coarse, par.fine_to_coarse);
    }

    #[test]
    fn parallel_matching_contracts_validly_at_any_thread_count() {
        let hg = mesh(800);
        for threads in [2usize, 4, 8] {
            let level = coarsen_once_parallel(&hg, 21, threads);
            level.hypergraph.validate().unwrap();
            let cn = level.hypergraph.num_vertices() as u32;
            assert!(
                (cn as usize) < hg.num_vertices(),
                "{threads} threads did not contract"
            );
            // Valid surjection onto the coarse ids, at most two fine
            // vertices per coarse vertex.
            let mut counts = vec![0usize; cn as usize];
            for &cv in &level.fine_to_coarse {
                assert!(cv < cn);
                counts[cv as usize] += 1;
            }
            assert!(counts.iter().all(|&c| (1..=2).contains(&c)));
            // Total vertex weight survives the contraction.
            assert!(
                (level.hypergraph.total_vertex_weight() - hg.total_vertex_weight()).abs() < 1e-9
            );
        }
    }

    #[test]
    fn hierarchy_honours_the_configured_thread_count() {
        let hg = mesh(1500);
        let config = MultilevelConfig {
            coarsen_until: 100,
            threads: 4,
            ..MultilevelConfig::default()
        };
        let levels = coarsen_hierarchy(&hg, &config);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().hypergraph;
        assert!(coarsest.num_vertices() <= 200);
        for l in &levels {
            l.hypergraph.validate().unwrap();
        }
    }

    use hyperpraw_hypergraph::HypergraphBuilder;
}
