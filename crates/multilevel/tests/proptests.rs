//! Property-based tests for the multilevel partitioner.

use proptest::prelude::*;

use hyperpraw_hypergraph::generators::{random_hypergraph, CardinalityDist, RandomConfig};
use hyperpraw_hypergraph::{metrics, Hypergraph};
use hyperpraw_multilevel::coarsen::{coarsen_once, project_assignment};
use hyperpraw_multilevel::{recursive_bisection, MultilevelConfig};

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (20usize..120, 10usize..80, 2usize..5, 0u64..1000).prop_map(|(n, e, card, seed)| {
        random_hypergraph(&RandomConfig {
            num_vertices: n,
            num_hyperedges: e,
            cardinality: CardinalityDist::Uniform {
                min: 2,
                max: card + 2,
            },
            seed,
            name: "prop".into(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn coarsening_conserves_weight_and_never_grows(hg in arb_hypergraph(), seed in 0u64..100) {
        let level = coarsen_once(&hg, seed);
        prop_assert!(level.hypergraph.num_vertices() <= hg.num_vertices());
        prop_assert!(level.hypergraph.num_hyperedges() <= hg.num_hyperedges());
        prop_assert!(
            (level.hypergraph.total_vertex_weight() - hg.total_vertex_weight()).abs() < 1e-6
        );
        prop_assert!(level.hypergraph.validate().is_ok());
    }

    #[test]
    fn projected_assignments_agree_with_coarse_cut(hg in arb_hypergraph(), seed in 0u64..100) {
        // A cut measured on the coarse hypergraph can only under-estimate the
        // fine cut (contracted vertices stay together).
        let level = coarsen_once(&hg, seed);
        let coarse_n = level.hypergraph.num_vertices();
        let coarse_assignment: Vec<u32> = (0..coarse_n as u32).map(|v| v % 2).collect();
        let coarse_part = hyperpraw_hypergraph::Partition::from_assignment(
            coarse_assignment.clone(), 2).unwrap();
        let fine_assignment = project_assignment(&level.fine_to_coarse, &coarse_assignment);
        let fine_part = hyperpraw_hypergraph::Partition::from_assignment(fine_assignment, 2).unwrap();
        let coarse_cut = metrics::weighted_hyperedge_cut(&level.hypergraph, &coarse_part);
        let fine_cut = metrics::weighted_hyperedge_cut(&hg, &fine_part);
        // Identical nets were merged with summed weights, so weighted cuts match.
        prop_assert!(fine_cut >= coarse_cut - 1e-9);
    }

    #[test]
    fn recursive_bisection_produces_valid_partitions(
        hg in arb_hypergraph(),
        k in 2u32..6,
        seed in 0u64..50,
    ) {
        let config = MultilevelConfig { coarsen_until: 30, initial_trials: 4, fm_passes: 2, seed,
            ..MultilevelConfig::default() };
        let part = recursive_bisection(&hg, k, &config);
        prop_assert_eq!(part.num_parts(), k);
        prop_assert_eq!(part.num_vertices(), hg.num_vertices());
        // All parts non-empty whenever there are enough vertices.
        if hg.num_vertices() >= 4 * k as usize {
            prop_assert_eq!(part.used_parts(), k as usize);
        }
        // Cut is bounded by the number of hyperedges.
        let cut = metrics::hyperedge_cut(&hg, &part);
        prop_assert!(cut <= hg.num_hyperedges() as u64);
    }

    #[test]
    fn partitioning_is_deterministic(
        hg in arb_hypergraph(),
        k in 2u32..5,
        seed in 0u64..20,
    ) {
        let config = MultilevelConfig { coarsen_until: 30, seed, ..MultilevelConfig::default() };
        let a = recursive_bisection(&hg, k, &config);
        let b = recursive_bisection(&hg, k, &config);
        prop_assert_eq!(a.assignment(), b.assignment());
    }
}
