//! End-to-end out-of-core pipeline: write a suite instance to disk as
//! hMETIS, transpose it into a vertex stream, partition it under a tight
//! memory budget through `PartitionJob::run_stream`, and evaluate the
//! result by streaming the file again — the CSR hypergraph is only ever
//! built to cross-check the answers.

use hyperpraw::hypergraph::generators::suite::{PaperInstance, SuiteConfig};
use hyperpraw::hypergraph::io::hmetis;
use hyperpraw::hypergraph::io::stream::{stream_hgr_file, StreamOptions, VertexStream};
use hyperpraw::hypergraph::metrics;
use hyperpraw::lowmem::evaluate_hgr_file;
use hyperpraw::prelude::*;

#[test]
fn disk_stream_partitioning_respects_the_budget_and_beats_round_robin() {
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.02));
    let path = std::env::temp_dir().join(format!(
        "hyperpraw_lowmem_pipeline_{}.hgr",
        std::process::id()
    ));
    hmetis::write_hgr_file(&hg, &path).unwrap();

    let p = 8u32;
    let budget = MemoryBudget::bytes(256 << 10);
    let plan = budget.plan(p as usize, hg.num_hyperedges());
    let options = StreamOptions {
        buffer_bytes: plan.transpose_buffer_bytes,
        spill_dir: None,
    };
    let mut stream = stream_hgr_file(&path, &options).unwrap();
    assert_eq!(stream.num_vertices(), hg.num_vertices());
    assert_eq!(stream.num_nets(), hg.num_hyperedges());

    let mut report = PartitionJob::new(Algorithm::LowMemSketched)
        .partitions(p)
        .memory_budget(budget)
        .run_stream(&mut stream)
        .unwrap();

    // Peak memory is bounded by the budget on both sides of the pipeline.
    assert!(
        stream.peak_loaded_bytes() <= plan.transpose_buffer_bytes,
        "transpose peak {} exceeds planned buffer {}",
        stream.peak_loaded_bytes(),
        plan.transpose_buffer_bytes
    );
    let stats = report.lowmem.expect("stream runs report lowmem stats");
    assert!(
        stats.index_memory_bytes <= budget.bytes,
        "index memory {} exceeds budget {}",
        stats.index_memory_bytes,
        budget.bytes
    );

    // The streamed quality evaluation agrees with the in-memory metrics,
    // and back-fills the report's cut fields.
    assert_eq!(report.hyperedge_cut, None);
    let streamed = evaluate_hgr_file(&path, &report.partition).unwrap();
    report.attach_streamed_quality(&streamed);
    assert_eq!(
        report.hyperedge_cut,
        Some(metrics::hyperedge_cut(&hg, &report.partition))
    );
    assert_eq!(report.soed, Some(metrics::soed(&hg, &report.partition)));

    // One bounded-memory pass still beats the naive baseline.
    let rr = Partition::round_robin(hg.num_vertices(), p);
    assert!(
        streamed.soed < metrics::soed(&hg, &rr),
        "streaming SOED {} should beat round robin {}",
        streamed.soed,
        metrics::soed(&hg, &rr)
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn bsp_multi_pass_out_of_core_restreaming_runs_from_a_disk_stream() {
    // The engine combination none of the pre-refactor drivers could
    // express: bulk-synchronous worker threads scoring a frozen sketched
    // connectivity index over an on-disk vertex stream, restreamed for
    // several passes with the sketches rebuilt in between — one job away.
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.02));
    let path = std::env::temp_dir().join(format!(
        "hyperpraw_lowmem_bsp_pipeline_{}.hgr",
        std::process::id()
    ));
    hmetis::write_hgr_file(&hg, &path).unwrap();

    let p = 8u32;
    let budget = MemoryBudget::bytes(512 << 10);
    let options = StreamOptions {
        buffer_bytes: budget
            .plan(p as usize, hg.num_hyperedges())
            .transpose_buffer_bytes,
        spill_dir: None,
    };
    let mut stream = stream_hgr_file(&path, &options).unwrap();
    let report = PartitionJob::new(Algorithm::LowMemSketched)
        .partitions(p)
        .memory_budget(budget)
        .passes(2)
        .rebuild_sketches(true)
        .threads(4)
        .sync_interval(256)
        .run_stream(&mut stream)
        .unwrap();

    assert_eq!(report.partition.num_vertices(), hg.num_vertices());
    let stats = report.lowmem.unwrap();
    assert!(stats.passes >= 1 && stats.passes <= 2);
    assert_eq!(report.iterations, stats.passes);
    // The double-buffered index pair still fits the budget.
    assert!(
        stats.index_memory_bytes <= budget.bytes,
        "index pair {} exceeds budget {}",
        stats.index_memory_bytes,
        budget.bytes
    );
    let streamed = evaluate_hgr_file(&path, &report.partition).unwrap();
    let rr = Partition::round_robin(hg.num_vertices(), p);
    assert!(
        streamed.soed < metrics::soed(&hg, &rr),
        "BSP out-of-core SOED {} should beat round robin {}",
        streamed.soed,
        metrics::soed(&hg, &rr)
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn prior_mode_tracks_in_memory_hyperpraw_on_a_single_stream() {
    // With the round-robin prior and the exact index, the streaming
    // partitioner implements the same restreaming semantics as core's
    // first stream; on a general hypergraph the counts differ (nets vs.
    // distinct neighbours) but the outcome must stay in the same quality
    // class as one in-memory stream.
    let hg = PaperInstance::AbacusShellHd.generate(&SuiteConfig::scaled(0.02));
    let p = 6u32;
    let alpha = HyperPrawConfig::fennel_alpha(p, hg.num_vertices(), hg.num_hyperedges());

    let core = PartitionJob::new(Algorithm::HyperPrawBasic)
        .partitions(p)
        .hyperpraw_config(HyperPrawConfig {
            initial_alpha: Some(alpha),
            max_iterations: 1,
            refinement: RefinementPolicy::None,
            imbalance_tolerance: f64::from(u32::MAX),
            ..HyperPrawConfig::default()
        })
        .run(&hg)
        .unwrap();

    let lowmem = PartitionJob::new(Algorithm::LowMemExact)
        .partitions(p)
        .lowmem_config(LowMemConfig {
            index: IndexKind::Exact,
            alpha: Some(alpha),
            round_robin_prior: true,
            ..LowMemConfig::default()
        })
        .run(&hg)
        .unwrap();

    let core_soed = metrics::soed(&hg, &core.partition) as f64;
    let lowmem_soed = metrics::soed(&hg, &lowmem.partition) as f64;
    assert!(
        lowmem_soed <= core_soed * 1.5 + 10.0,
        "lowmem SOED {lowmem_soed} too far from core's single stream {core_soed}"
    );
}
