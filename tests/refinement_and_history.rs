//! Integration tests of the restreaming behaviour the paper analyses in
//! §6.1 / Figure 3: the refinement phase and the partition history, driven
//! through the unified `PartitionJob` API.

use hyperpraw::hypergraph::generators::suite::{PaperInstance, SuiteConfig};
use hyperpraw::prelude::*;

fn cost_for(procs: usize, seed: u64) -> CostMatrix {
    let machine = MachineModel::archer_like(procs);
    let link = LinkModel::from_machine(&machine, 0.05, seed);
    CostMatrix::from_bandwidth(&RingProfiler::default().profile(&link))
}

fn run(hg: &Hypergraph, cost: &CostMatrix, policy: RefinementPolicy) -> PartitionReport {
    PartitionJob::new(Algorithm::HyperPrawAware)
        .cost(cost.clone())
        .refinement(policy)
        .run(hg)
        .expect("valid refinement configuration")
}

#[test]
fn refinement_runs_longer_and_never_ends_worse_than_no_refinement() {
    let cost = cost_for(24, 1);
    for inst in [PaperInstance::TwoCubesSphere, PaperInstance::AbacusShellHd] {
        let hg = inst.generate(&SuiteConfig::scaled(0.02));
        let none = run(&hg, &cost, RefinementPolicy::None);
        let keep = run(&hg, &cost, RefinementPolicy::Factor(1.0));
        let relax = run(&hg, &cost, RefinementPolicy::Factor(0.95));
        assert!(keep.iterations >= none.iterations, "{inst}");
        assert!(relax.iterations >= none.iterations, "{inst}");
        assert!(
            keep.comm_cost.unwrap() <= none.comm_cost.unwrap() + 1e-9,
            "{inst}: refinement 1.0 ended worse ({:?} vs {:?})",
            keep.comm_cost,
            none.comm_cost
        );
        assert!(
            relax.comm_cost.unwrap() <= none.comm_cost.unwrap() + 1e-9,
            "{inst}: refinement 0.95 ended worse ({:?} vs {:?})",
            relax.comm_cost,
            none.comm_cost
        );
        // All variants respect the tolerance.
        for r in [&none, &keep, &relax] {
            assert!(
                r.imbalance <= 1.1 + 1e-9,
                "{inst}: imbalance {}",
                r.imbalance
            );
        }
    }
}

#[test]
fn comm_cost_history_is_monotone_non_increasing_over_the_feasible_prefix() {
    // The returned cost must equal the minimum over the feasible records up
    // to the stopping point (the algorithm rolls back to the best feasible
    // snapshot).
    let cost = cost_for(24, 2);
    let hg = PaperInstance::Sparsine.generate(&SuiteConfig::scaled(0.02));
    let result = run(&hg, &cost, RefinementPolicy::Factor(0.95));
    let feasible_min = result
        .history
        .records()
        .iter()
        .filter(|r| r.imbalance <= 1.1 + 1e-9)
        .map(|r| r.comm_cost)
        .fold(f64::INFINITY, f64::min);
    assert!(result.comm_cost.unwrap() <= feasible_min + 1e-6);
}

#[test]
fn tempering_phase_precedes_refinement_phase() {
    let cost = cost_for(24, 3);
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.01));
    let result = run(&hg, &cost, RefinementPolicy::Factor(0.95));
    let records = result.history.records();
    assert!(!records.is_empty());
    // Once the refinement phase starts it never goes back to tempering
    // *unless* a stream pushed the imbalance back out of tolerance; in that
    // case alpha must have been increased again. Verify the alpha policy per
    // phase transition instead of forbidding the transition.
    for w in records.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        match a.phase {
            hyperpraw::core::StreamPhase::Tempering => {
                assert!(
                    b.alpha >= a.alpha * 1.69,
                    "tempering must scale alpha by ~1.7 (got {} -> {})",
                    a.alpha,
                    b.alpha
                );
            }
            hyperpraw::core::StreamPhase::Refinement => {
                assert!(
                    b.alpha <= a.alpha * 1.0 + 1e-9,
                    "refinement 0.95 must not increase alpha (got {} -> {})",
                    a.alpha,
                    b.alpha
                );
            }
        }
    }
}

#[test]
fn history_csv_and_json_round_trip_the_series_lengths() {
    let cost = cost_for(16, 4);
    let hg = PaperInstance::AbacusShellHd.generate(&SuiteConfig::scaled(0.02));
    let result = run(&hg, &cost, RefinementPolicy::Factor(0.95));
    let csv = result.history.to_csv();
    assert_eq!(csv.lines().count(), result.history.len());
    assert_eq!(
        result.history.comm_cost_series().len(),
        result.history.len()
    );
    // The JSON report carries one history object per recorded stream.
    let json = result.to_json();
    assert_eq!(json.matches("\"iteration\":").count(), result.history.len());
}

#[test]
fn parallel_restreaming_matches_the_sequential_contract() {
    // The future-work extension must uphold the same external guarantees:
    // valid partition, tolerance respected, and quality comparable to the
    // sequential driver (within 2x SOED on a mesh).
    let procs = 16usize;
    let cost = cost_for(procs, 5);
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.02));
    let sequential = PartitionJob::new(Algorithm::HyperPrawAware)
        .cost(cost.clone())
        .run(&hg)
        .unwrap();
    let parallel = PartitionJob::new(Algorithm::ParallelAware)
        .cost(cost)
        .threads(4)
        .run(&hg)
        .unwrap();
    assert_eq!(parallel.partition.num_parts() as usize, procs);
    assert!(parallel.imbalance <= 1.1 + 1e-9);
    let s = soed(&hg, &sequential.partition) as f64;
    let p = soed(&hg, &parallel.partition) as f64;
    assert!(p <= 2.0 * s.max(1.0), "parallel SOED {p} vs sequential {s}");
}
