//! End-to-end integration tests: the full pipeline from hypergraph
//! generation through profiling, partitioning (through the unified
//! `PartitionJob` API) and the synthetic benchmark, asserting the *shape*
//! of the paper's headline results.

use hyperpraw::hypergraph::generators::suite::{PaperInstance, SuiteConfig};
use hyperpraw::prelude::*;

/// Builds a small ARCHER-like testbed: link model + profiled cost matrix.
fn testbed(procs: usize, seed: u64) -> (LinkModel, CostMatrix) {
    let machine = MachineModel::archer_like(procs);
    let link = LinkModel::from_machine(&machine, 0.05, seed);
    let bandwidth = RingProfiler::default().profile(&link);
    let cost = CostMatrix::from_bandwidth(&bandwidth);
    (link, cost)
}

/// Dispatches `algorithm` on the testbed's cost matrix through the front
/// door.
fn run(algorithm: Algorithm, hg: &Hypergraph, cost: &CostMatrix) -> PartitionReport {
    PartitionJob::new(algorithm)
        .cost(cost.clone())
        .run(hg)
        .expect("valid end-to-end configuration")
}

#[test]
fn full_pipeline_runs_for_a_suite_instance() {
    let procs = 24usize;
    let (link, cost) = testbed(procs, 1);
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.01));

    let report = run(Algorithm::HyperPrawAware, &hg, &cost);
    assert_eq!(report.partition.num_parts() as usize, procs);
    assert!(report.imbalance <= 1.1 + 1e-9);

    let bench = SyntheticBenchmark::new(link, BenchmarkConfig::default());
    let outcome = bench.run(&hg, &report.partition);
    assert!(outcome.total_time_us.is_finite());
    assert!(outcome.total_time_us >= 0.0);
    // The traffic matrix covers exactly the remote bytes of the benchmark.
    assert_eq!(outcome.traffic.remote_bytes(), outcome.remote_bytes);
}

#[test]
fn aware_beats_naive_placements_on_comm_cost_and_runtime() {
    let procs = 48usize;
    let (link, cost) = testbed(procs, 3);
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.02));

    // Every strategy through the same job API; the report's comm cost is
    // evaluated against the shared architecture matrix for all of them.
    let aware = run(Algorithm::HyperPrawAware, &hg, &cost);
    let round_robin = run(Algorithm::RoundRobin, &hg, &cost);
    let random = baselines::random(&hg, procs as u32, 1);

    let pc = |r: &PartitionReport| r.comm_cost.unwrap();
    assert!(pc(&aware) < pc(&round_robin));
    assert!(pc(&aware) < partitioning_communication_cost(&hg, &random, &cost));

    let bench = SyntheticBenchmark::new(link, BenchmarkConfig::default());
    let t_aware = bench.run(&hg, &aware.partition).total_time_us;
    let t_rr = bench.run(&hg, &round_robin.partition).total_time_us;
    assert!(
        t_aware < t_rr,
        "aware {t_aware} should beat round robin {t_rr}"
    );
}

#[test]
fn aware_beats_basic_which_matches_or_beats_zoltan_comm_cost() {
    // The Figure 4C ordering on a mesh instance: aware <= basic on the
    // architecture-aware metric, and both improve on the multilevel baseline.
    let procs = 24usize;
    let (_, cost) = testbed(procs, 5);
    let hg = PaperInstance::AbacusShellHd.generate(&SuiteConfig::scaled(0.05));

    let a = run(Algorithm::HyperPrawAware, &hg, &cost)
        .comm_cost
        .unwrap();
    let b = run(Algorithm::HyperPrawBasic, &hg, &cost)
        .comm_cost
        .unwrap();
    let z = run(Algorithm::MultilevelBaseline, &hg, &cost)
        .comm_cost
        .unwrap();

    assert!(a <= b * 1.05, "aware {a} should not lose to basic {b}");
    assert!(a < z, "aware {a} should beat the multilevel baseline {z}");
}

#[test]
fn benchmark_runtime_ranks_the_three_strategies_like_figure_5() {
    let procs = 48usize;
    let (link, cost) = testbed(procs, 10);
    let hg = PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.02));

    let aware = run(Algorithm::HyperPrawAware, &hg, &cost).partition;
    let basic = run(Algorithm::HyperPrawBasic, &hg, &cost).partition;
    let zoltan = run(Algorithm::MultilevelBaseline, &hg, &cost).partition;

    let bench = SyntheticBenchmark::new(link, BenchmarkConfig::default());
    let t_aware = bench.run(&hg, &aware).total_time_us;
    let t_basic = bench.run(&hg, &basic).total_time_us;
    let t_zoltan = bench.run(&hg, &zoltan).total_time_us;

    // The paper's headline: aware is the fastest of the three; the speedup
    // over the multilevel baseline is strictly greater than 1. Against basic
    // we only require "no worse" (at this reduced scale the two can tie on
    // instances with little locality; the full-scale gap is reported in
    // EXPERIMENTS.md).
    assert!(
        t_aware <= t_basic * 1.05,
        "aware {t_aware} should not be slower than basic {t_basic}"
    );
    assert!(
        t_aware < t_zoltan,
        "aware {t_aware} should be faster than zoltan-like {t_zoltan}"
    );
}

#[test]
fn report_metrics_are_consistent_across_crates() {
    let procs = 16usize;
    let (_, cost) = testbed(procs, 11);
    let hg = PaperInstance::Webbase1M.generate(&SuiteConfig::scaled(0.002));
    let report = run(Algorithm::HyperPrawAware, &hg, &cost);
    // The report's metrics agree with the low-level metric functions.
    assert_eq!(
        report.hyperedge_cut,
        Some(hyperedge_cut(&hg, &report.partition))
    );
    assert_eq!(report.soed, Some(soed(&hg, &report.partition)));
    assert!((report.imbalance - report.partition.imbalance(&hg).unwrap()).abs() < 1e-12);
    assert!(report.comm_cost.unwrap() >= 0.0);
    // And with an independently computed QualityReport.
    let quality = QualityReport::compute(&hg, &report.partition, &cost);
    assert_eq!(report.comm_cost, Some(quality.comm_cost));
}

#[test]
fn flat_machines_make_aware_equivalent_to_basic() {
    // On a homogeneous machine the profiled cost matrix is uniform, so the
    // aware variant degenerates to basic (same decisions, same partition).
    let procs = 8usize;
    let link = LinkModel::uniform(procs, 1_000.0, 1.0);
    let profiled = RingProfiler {
        noise_sigma: 0.0,
        ..RingProfiler::default()
    }
    .profile(&link);
    let cost = CostMatrix::from_bandwidth(&profiled);
    assert!(cost.is_uniform());
    let hg = PaperInstance::AbacusShellHd.generate(&SuiteConfig::scaled(0.02));
    let aware = run(Algorithm::HyperPrawAware, &hg, &cost);
    let basic = run(Algorithm::HyperPrawBasic, &hg, &cost);
    assert_eq!(aware.partition, basic.partition);
}
