//! Integration tests that cross-validate the two simulation models (the
//! event-driven simulator and the aggregate synthetic benchmark) and the
//! relationship between partition quality metrics and simulated runtime.

use hyperpraw::hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw::netsim::{EventDrivenSim, Message};
use hyperpraw::prelude::*;

/// Materialises the benchmark's message list explicitly (one message per
/// ordered cut pin pair of every hyperedge) — only feasible for tiny cases.
fn materialise_messages(hg: &Hypergraph, part: &Partition, bytes: u64) -> Vec<Message> {
    let mut messages = Vec::new();
    for e in hg.hyperedges() {
        let pins = hg.pins(e);
        for &a in pins {
            for &b in pins {
                if a == b {
                    continue;
                }
                let (pa, pb) = (part.part_of(a) as usize, part.part_of(b) as usize);
                if pa != pb {
                    messages.push(Message::new(pa, pb, bytes));
                }
            }
        }
    }
    messages
}

#[test]
fn aggregate_benchmark_traffic_matches_explicit_message_enumeration() {
    let hg = mesh_hypergraph(&MeshConfig::new(200, 6));
    let p = 6usize;
    let part = baselines::round_robin(&hg, p as u32);
    let link = LinkModel::uniform(p, 100.0, 1.0);
    let bench = SyntheticBenchmark::new(
        link.clone(),
        BenchmarkConfig {
            message_bytes: 32,
            barrier: false,
            ..BenchmarkConfig::default()
        },
    );
    let result = bench.run(&hg, &part);
    let messages = materialise_messages(&hg, &part, 32);
    assert_eq!(result.remote_messages as usize, messages.len());

    // Event-driven delivery of the same messages: both models see identical
    // traffic, and their makespans agree within a small factor (the aggregate
    // model serialises per endpoint, the event model additionally interleaves
    // sends and receives).
    let mut sim = EventDrivenSim::new(link);
    let outcome = sim.simulate_round(&messages);
    for i in 0..p {
        for j in 0..p {
            if i != j {
                assert_eq!(sim.trace().bytes(i, j), result.traffic.bytes(i, j));
            }
        }
    }
    assert!(outcome.makespan_us > 0.0);
    let ratio = result.superstep_us / outcome.makespan_us;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "aggregate {} vs event-driven {} (ratio {ratio})",
        result.superstep_us,
        outcome.makespan_us
    );
}

#[test]
fn lower_comm_cost_implies_lower_simulated_runtime_across_candidates() {
    // The partitioning communication cost (the metric HyperPRAW optimises)
    // must rank candidate partitions in the same order as the simulated
    // benchmark runtime — that correlation is the premise of the paper.
    let procs = 24usize;
    let machine = MachineModel::archer_like(procs);
    let link = LinkModel::from_machine(&machine, 0.0, 1);
    let cost = CostMatrix::from_bandwidth(
        &RingProfiler {
            noise_sigma: 0.0,
            ..RingProfiler::default()
        }
        .profile(&link),
    );
    let hg = mesh_hypergraph(&MeshConfig::new(1200, 10));
    let bench = SyntheticBenchmark::new(
        link,
        BenchmarkConfig {
            barrier: false,
            ..BenchmarkConfig::default()
        },
    );

    let candidates = [
        ("random", baselines::random(&hg, procs as u32, 3)),
        ("round_robin", baselines::round_robin(&hg, procs as u32)),
        ("blocks", baselines::blocks(&hg, procs as u32)),
        (
            "aware",
            HyperPraw::aware(HyperPrawConfig::default(), cost.clone())
                .partition(&hg)
                .partition,
        ),
    ];
    let mut measured: Vec<(f64, f64, &str)> = candidates
        .iter()
        .map(|(name, p)| {
            (
                partitioning_communication_cost(&hg, p, &cost),
                bench.run(&hg, p).total_time_us,
                *name,
            )
        })
        .collect();
    // Sort by comm cost; the runtimes of the extremes must follow the order.
    measured.sort_by(|a, b| a.0.total_cmp(&b.0));
    let best = measured.first().unwrap();
    let worst = measured.last().unwrap();
    assert!(
        best.1 < worst.1,
        "lowest comm cost ({}, {}us) should be faster than highest ({}, {}us)",
        best.2,
        best.1,
        worst.2,
        worst.1
    );
    // And the aware partition must be the best of the candidates on both.
    assert_eq!(best.2, "aware");
}

#[test]
fn barrier_only_accounts_for_sync_overhead() {
    let p = 8usize;
    let link = LinkModel::uniform(p, 100.0, 2.0);
    let hg = mesh_hypergraph(&MeshConfig::new(64, 4));
    let part = Partition::all_in_one(hg.num_vertices(), p as u32);
    let with_barrier =
        SyntheticBenchmark::new(link.clone(), BenchmarkConfig::default()).run(&hg, &part);
    let without = SyntheticBenchmark::new(
        link,
        BenchmarkConfig {
            barrier: false,
            ..BenchmarkConfig::default()
        },
    )
    .run(&hg, &part);
    assert_eq!(without.total_time_us, 0.0);
    assert!(with_barrier.total_time_us > 0.0);
    assert_eq!(with_barrier.superstep_us, 0.0);
}

#[test]
fn profiled_and_nominal_cost_matrices_agree_on_link_ranking() {
    // The ring profiler must preserve the ordering of link costs that the
    // underlying machine defines — otherwise "aware" would optimise for the
    // wrong links.
    let procs = 48usize;
    let machine = MachineModel::archer_like(procs);
    let link = LinkModel::from_machine(&machine, 0.0, 2);
    let nominal = CostMatrix::from_bandwidth(link.bandwidth());
    let profiled = CostMatrix::from_bandwidth(
        &RingProfiler {
            noise_sigma: 0.0,
            message_bytes: 8 << 20,
            ..RingProfiler::default()
        }
        .profile(&link),
    );
    for &(a, b, c, d) in &[
        (0usize, 1usize, 0usize, 30usize),
        (0, 13, 0, 47),
        (5, 6, 5, 90 % procs),
    ] {
        let nominal_says = nominal.get(a, b) < nominal.get(c, d);
        let profiled_says = profiled.get(a, b) < profiled.get(c, d);
        assert_eq!(
            nominal_says, profiled_says,
            "ranking of ({a},{b}) vs ({c},{d})"
        );
    }
}
