//! Integration tests for dataset IO round-trips and cross-run determinism of
//! the whole pipeline.

use std::io::Cursor;

use hyperpraw::hypergraph::generators::suite::{PaperInstance, SuiteConfig};
use hyperpraw::hypergraph::io::{edgelist, hmetis, matrix_market};
use hyperpraw::prelude::*;

#[test]
fn suite_instance_round_trips_through_hgr_and_partitions_identically() {
    let hg = PaperInstance::AbacusShellHd.generate(&SuiteConfig::scaled(0.02));
    let mut buffer = Vec::new();
    hmetis::write_hgr(&hg, &mut buffer).unwrap();
    let reread = hmetis::read_hgr(Cursor::new(buffer)).unwrap();
    assert_eq!(reread.num_vertices(), hg.num_vertices());
    assert_eq!(reread.num_hyperedges(), hg.num_hyperedges());

    // Partitioning the re-read hypergraph gives the same result as the
    // original: the partitioner only depends on the structure.
    let p = 8u32;
    let job = PartitionJob::new(Algorithm::HyperPrawBasic).partitions(p);
    let a = job.run(&hg).unwrap();
    let b = job.run(&reread).unwrap();
    assert_eq!(a.partition, b.partition);
    assert_eq!(
        hyperedge_cut(&hg, &a.partition),
        hyperedge_cut(&reread, &b.partition)
    );
}

#[test]
fn edgelist_and_mtx_paths_produce_consistent_hypergraphs() {
    // A tiny symmetric matrix written as MatrixMarket and as an edge list
    // must produce hypergraphs with the same cut behaviour.
    let mtx_text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
        6 6 8\n\
        1 1\n2 1\n3 2\n4 3\n5 4\n6 5\n6 4\n5 3\n";
    let matrix = matrix_market::read_mtx(Cursor::new(mtx_text)).unwrap();
    let from_mtx = matrix.to_hypergraph(matrix_market::SparseMatrixModel::RowNet, "tiny");

    let mut edge_text = String::new();
    for e in from_mtx.hyperedges() {
        let pins: Vec<String> = from_mtx.pins(e).iter().map(|v| v.to_string()).collect();
        edge_text.push_str(&pins.join(" "));
        edge_text.push('\n');
    }
    let from_edges = edgelist::read_edgelist(Cursor::new(edge_text)).unwrap();

    assert_eq!(from_mtx.num_hyperedges(), from_edges.num_hyperedges());
    let part = Partition::round_robin(from_mtx.num_vertices(), 3);
    assert_eq!(
        hyperedge_cut(&from_mtx, &part),
        hyperedge_cut(&from_edges, &part)
    );
    assert_eq!(soed(&from_mtx, &part), soed(&from_edges, &part));
}

#[test]
fn whole_pipeline_is_deterministic_for_fixed_seeds() {
    let procs = 24usize;
    let run_once = || {
        let hg = PaperInstance::Sparsine.generate(&SuiteConfig::scaled(0.01).with_seed(77));
        let machine = MachineModel::archer_like(procs);
        let link = LinkModel::from_machine(&machine, 0.05, 9);
        let bw = RingProfiler::default().profile(&link);
        let cost = CostMatrix::from_bandwidth(&bw);
        let part = PartitionJob::new(Algorithm::HyperPrawAware)
            .cost(cost)
            .seed(5)
            .run(&hg)
            .unwrap()
            .partition;
        let bench = SyntheticBenchmark::new(link, BenchmarkConfig::default());
        let result = bench.run(&hg, &part);
        (part, result.total_time_us, result.remote_bytes)
    };
    let (p1, t1, b1) = run_once();
    let (p2, t2, b2) = run_once();
    assert_eq!(p1, p2);
    assert_eq!(b1, b2);
    assert!((t1 - t2).abs() < 1e-9);
}

#[test]
fn different_seeds_change_the_generated_instances_but_not_their_shape() {
    let a = PaperInstance::Webbase1M.generate(&SuiteConfig::scaled(0.002).with_seed(1));
    let b = PaperInstance::Webbase1M.generate(&SuiteConfig::scaled(0.002).with_seed(2));
    assert_ne!(a, b);
    // Same macroscopic shape.
    assert_eq!(a.num_vertices(), b.num_vertices());
    let ca = a.avg_cardinality();
    let cb = b.avg_cardinality();
    assert!(
        (ca - cb).abs() / ca < 0.2,
        "cardinality drifted: {ca} vs {cb}"
    );
}

#[test]
fn every_suite_instance_survives_an_hgr_round_trip() {
    let cfg = SuiteConfig::scaled(0.004);
    for inst in PaperInstance::all() {
        let hg = inst.generate(&cfg);
        let mut buffer = Vec::new();
        hmetis::write_hgr(&hg, &mut buffer).unwrap();
        let reread = hmetis::read_hgr(Cursor::new(buffer)).unwrap();
        assert_eq!(reread.num_vertices(), hg.num_vertices(), "{inst}");
        assert_eq!(reread.num_hyperedges(), hg.num_hyperedges(), "{inst}");
        assert_eq!(reread.num_pins(), hg.num_pins(), "{inst}");
    }
}
