//! Pins the facade's one-front-door guarantee: for every [`Algorithm`],
//! dispatching through [`PartitionJob`] produces a partition **bit
//! identical** to calling the underlying driver directly with the same
//! configuration — the job API is a facade over the thin drivers, not a
//! reimplementation. Includes the on-disk lowmem stream path.

use hyperpraw::hypergraph::generators::suite::{PaperInstance, SuiteConfig};
use hyperpraw::hypergraph::io::hmetis;
use hyperpraw::hypergraph::io::stream::{stream_hgr_file, StreamOptions};
use hyperpraw::prelude::*;

fn testbed_cost(procs: usize, seed: u64) -> CostMatrix {
    let machine = MachineModel::archer_like(procs);
    let link = LinkModel::from_machine(&machine, 0.05, seed);
    CostMatrix::from_bandwidth(&RingProfiler::default().profile(&link))
}

fn instance() -> Hypergraph {
    PaperInstance::TwoCubesSphere.generate(&SuiteConfig::scaled(0.01))
}

const P: u32 = 8;
const SEED: u64 = 11;

#[test]
fn hyperpraw_basic_matches_the_direct_driver_bit_for_bit() {
    let hg = instance();
    let direct = HyperPraw::basic(HyperPrawConfig::default().with_seed(SEED), P).partition(&hg);
    let api = PartitionJob::new(Algorithm::HyperPrawBasic)
        .partitions(P)
        .seed(SEED)
        .run(&hg)
        .unwrap();
    assert_eq!(api.partition, direct.partition);
    assert_eq!(api.history, direct.history);
    assert_eq!(api.iterations, direct.iterations);
    assert_eq!(api.stop_reason, Some(direct.stop_reason));
    assert_eq!(api.final_alpha, Some(direct.final_alpha));
}

#[test]
fn hyperpraw_aware_matches_the_direct_driver_bit_for_bit() {
    let hg = instance();
    let cost = testbed_cost(P as usize, 3);
    let direct =
        HyperPraw::aware(HyperPrawConfig::default().with_seed(SEED), cost.clone()).partition(&hg);
    let api = PartitionJob::new(Algorithm::HyperPrawAware)
        .cost(cost)
        .seed(SEED)
        .run(&hg)
        .unwrap();
    assert_eq!(api.partition, direct.partition);
    assert_eq!(api.history, direct.history);
    // The report's comm cost is evaluated with the same matrix the driver
    // partitioned with, so the values are bit-equal too.
    assert_eq!(api.comm_cost, Some(direct.comm_cost));
}

#[test]
fn parallel_variants_match_the_direct_driver_bit_for_bit() {
    let hg = instance();
    let cost = testbed_cost(P as usize, 5);
    for (algorithm, driver_cost) in [
        (Algorithm::ParallelBasic, CostMatrix::uniform(P as usize)),
        (Algorithm::ParallelAware, cost.clone()),
    ] {
        let direct = ParallelHyperPraw::new(
            HyperPrawConfig::default().with_seed(SEED),
            ParallelConfig {
                num_threads: 3,
                sync_interval: 256,
                mode: ParallelMode::Bsp,
            },
            driver_cost,
        )
        .partition(&hg);
        let api = PartitionJob::new(algorithm)
            .cost(cost.clone())
            .seed(SEED)
            .threads(3)
            .sync_interval(256)
            .run(&hg)
            .unwrap();
        assert_eq!(api.partition, direct.partition, "{algorithm:?}");
        assert_eq!(api.history, direct.history, "{algorithm:?}");
        assert_eq!(api.iterations, direct.iterations, "{algorithm:?}");
    }
}

#[test]
fn lowmem_variants_match_the_direct_driver_in_memory() {
    let hg = instance();
    let cost = testbed_cost(P as usize, 7);
    for (algorithm, index) in [
        (Algorithm::LowMemExact, IndexKind::Exact),
        (Algorithm::LowMemSketched, IndexKind::Sketched),
    ] {
        let direct = LowMemPartitioner::new(
            LowMemConfig {
                index,
                seed: SEED,
                ..LowMemConfig::default()
            },
            cost.clone(),
        )
        .partition_hypergraph(&hg);
        let api = PartitionJob::new(algorithm)
            .cost(cost.clone())
            .seed(SEED)
            .run(&hg)
            .unwrap();
        assert_eq!(api.partition, direct.partition, "{algorithm:?}");
        let stats = api.lowmem.expect("lowmem runs report their stats");
        assert_eq!(stats.alpha, direct.alpha, "{algorithm:?}");
        assert_eq!(stats.restreamed, direct.restreamed, "{algorithm:?}");
        assert_eq!(
            stats.index_memory_bytes, direct.index_memory_bytes,
            "{algorithm:?}"
        );
    }
}

#[test]
fn lowmem_on_disk_stream_matches_the_direct_driver_bit_for_bit() {
    // The same .hgr file is transposed twice; the job dispatch must place
    // every vertex exactly like the direct driver, multi-pass BSP included.
    let hg = instance();
    let path = std::env::temp_dir().join(format!(
        "hyperpraw_api_equivalence_{}.hgr",
        std::process::id()
    ));
    hmetis::write_hgr_file(&hg, &path).unwrap();
    let budget = MemoryBudget::bytes(256 << 10);
    let options = StreamOptions {
        buffer_bytes: budget
            .plan(P as usize, hg.num_hyperedges())
            .transpose_buffer_bytes,
        spill_dir: None,
    };
    let config = LowMemConfig {
        budget,
        index: IndexKind::Sketched,
        passes: 2,
        rebuild_sketches: true,
        threads: 3,
        sync_interval: 128,
        seed: SEED,
        ..LowMemConfig::default()
    };
    let cost = testbed_cost(P as usize, 9);

    let mut direct_stream = stream_hgr_file(&path, &options).unwrap();
    let direct = LowMemPartitioner::new(config.clone(), cost.clone())
        .partition(&mut direct_stream)
        .unwrap();

    let mut api_stream = stream_hgr_file(&path, &options).unwrap();
    let api = PartitionJob::new(Algorithm::LowMemSketched)
        .cost(cost)
        .lowmem_config(config)
        .run_stream(&mut api_stream)
        .unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(api.partition, direct.partition);
    let stats = api.lowmem.unwrap();
    assert_eq!(stats.passes, direct.passes);
    assert_eq!(stats.restreamed, direct.restreamed);
    assert_eq!(stats.moved_in_restream, direct.moved_in_restream);
    // A pure stream run reports no cut metrics until a streamed
    // evaluation back-fills them.
    assert_eq!(api.hyperedge_cut, None);
    assert_eq!(api.comm_cost, None);
}

#[test]
fn multilevel_and_round_robin_match_the_direct_calls() {
    let hg = instance();
    let direct_ml =
        MultilevelPartitioner::new(MultilevelConfig::default().with_seed(SEED)).partition(&hg, P);
    let api_ml = PartitionJob::new(Algorithm::MultilevelBaseline)
        .partitions(P)
        .seed(SEED)
        .run(&hg)
        .unwrap();
    assert_eq!(api_ml.partition, direct_ml);

    let direct_rr = baselines::round_robin(&hg, P);
    let api_rr = PartitionJob::new(Algorithm::RoundRobin)
        .partitions(P)
        .run(&hg)
        .unwrap();
    assert_eq!(api_rr.partition, direct_rr);
}

#[test]
fn every_algorithm_report_serialises_to_json() {
    let hg = instance();
    let cost = testbed_cost(P as usize, 13);
    for algorithm in Algorithm::all() {
        let report = PartitionJob::new(algorithm)
            .cost(cost.clone())
            .seed(SEED)
            .run(&hg)
            .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
        let json = report.to_json();
        assert!(
            json.contains(&format!("\"algorithm\": \"{}\"", algorithm.name())),
            "{algorithm}: {json}"
        );
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{algorithm}: unbalanced JSON"
        );
    }
}
