//! End-to-end compressed data path through the facade: `.hgr` →
//! `convert_file` → [`PartitionJob::run_compressed_file`] must place
//! every vertex exactly like the in-memory driver and the uncompressed
//! transpose stream, with and without prefetch.

use hyperpraw::api::{Algorithm, PartitionJob};
use hyperpraw::hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw::hypergraph::io::hmetis;
use hyperpraw::hypergraph::io::stream::{stream_hgr_file, StreamOptions};
use hyperpraw::storage::{convert_file, is_compressed_file};

const P: u32 = 10;
const SEED: u64 = 31;

#[test]
fn run_compressed_file_matches_in_memory_and_transpose_paths() {
    let hg = mesh_hypergraph(&MeshConfig::new(500, 8));
    let dir = std::env::temp_dir().join(format!("hpz-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let hgr = dir.join("mesh.hgr");
    hmetis::write_hgr_file(&hg, &hgr).unwrap();
    let hpz = dir.join("mesh.hpz");
    let meta = convert_file(&hgr, &hpz, 8 * 1024, &StreamOptions::default()).unwrap();
    assert_eq!(meta.num_vertices as usize, hg.num_vertices());
    assert_eq!(meta.num_pins as usize, hg.num_pins());
    assert!(is_compressed_file(&hpz));

    for algorithm in [Algorithm::LowMemExact, Algorithm::LowMemSketched] {
        let job = PartitionJob::new(algorithm).partitions(P).seed(SEED);

        let in_memory = job.run(&hg).unwrap();
        let mut transpose = stream_hgr_file(&hgr, &StreamOptions::default()).unwrap();
        let streamed = job.run_stream(&mut transpose).unwrap();
        let compressed = job.run_compressed_file(&hpz).unwrap();
        let compressed_sync = job
            .clone()
            .prefetch(false)
            .run_compressed_file(&hpz)
            .unwrap();

        assert_eq!(
            compressed.partition, in_memory.partition,
            "{algorithm:?}: compressed prefetch vs in-memory"
        );
        assert_eq!(
            compressed.partition, streamed.partition,
            "{algorithm:?}: compressed prefetch vs transpose stream"
        );
        assert_eq!(
            compressed_sync.partition, compressed.partition,
            "{algorithm:?}: sync vs prefetch"
        );
    }

    // Non-streaming algorithms refuse the compressed path with a clear error.
    let err = PartitionJob::new(Algorithm::HyperPrawBasic)
        .partitions(P)
        .run_compressed_file(&hpz)
        .unwrap_err();
    assert!(matches!(
        err,
        hyperpraw::api::PartitionError::Unsupported(_)
    ));

    // A non-compressed input errors instead of misparsing.
    assert!(PartitionJob::new(Algorithm::LowMemExact)
        .partitions(P)
        .run_compressed_file(&hgr)
        .is_err());

    std::fs::remove_dir_all(&dir).ok();
}
