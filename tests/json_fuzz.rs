//! Property fuzz of [`hyperpraw::json`]: whatever bytes arrive on a serve
//! connection, the parser must either produce a value or return a
//! [`hyperpraw::json::JsonError`] whose byte offset points inside the
//! input — it must never panic, and the offset in the structured error
//! response must always be meaningful to the client.

use hyperpraw::json::{self, JsonValue};
use proptest::prelude::*;

/// Characters weighted towards JSON structure so random strings reach
/// deep into the parser (nesting, escapes, numbers, literals) instead of
/// failing on the first byte.
const JSON_ALPHABET: &[u8] = br#"{}[]",:\/-+.0123456789eEtruefalsnu "#;

fn check(input: &str) -> Result<(), String> {
    match json::parse(input) {
        Ok(_) => Ok(()),
        Err(e) => {
            prop_assert!(
                e.offset <= input.len(),
                "offset {} outside input of {} bytes: {input:?}",
                e.offset,
                input.len()
            );
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded — the serve loop rejects invalid
    /// UTF-8 before the parser ever sees it) never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        check(&input)?;
    }

    /// Strings over a JSON-flavoured alphabet — dense in structural
    /// tokens, escapes and digits — never panic and keep offsets in range.
    #[test]
    fn json_shaped_strings_never_panic(picks in prop::collection::vec(0usize..JSON_ALPHABET.len(), 0..96)) {
        let input: String = picks.iter().map(|&i| JSON_ALPHABET[i] as char).collect();
        check(&input)?;
    }

    /// Single-byte corruptions of valid protocol documents parse or fail
    /// cleanly; the pristine document must still parse.
    #[test]
    fn corrupted_valid_documents_fail_cleanly(
        doc in 0usize..4,
        index in 0usize..1024,
        replacement in 0u8..=255,
    ) {
        const DOCS: [&str; 4] = [
            r#"{"op": "partition", "parts": 4, "edges": [[0,1,2],[2,3]], "seed": 7}"#,
            r#"{"op": "update", "updates": [{"op": "add_edge", "pins": [4,0], "weight": 1.5e-2}]}"#,
            r#"{"nested": [[[{"deep": [null, true, false, -0.125]}]]], "s": "a\nA😀"}"#,
            r#"[{"k": ""}, 1e308, "trailing \\ backslash"]"#,
        ];
        let pristine = DOCS[doc];
        prop_assert!(json::parse(pristine).is_ok(), "pristine doc {doc} must parse");
        let mut bytes = pristine.as_bytes().to_vec();
        let at = index % bytes.len();
        bytes[at] = replacement;
        let input = String::from_utf8_lossy(&bytes).into_owned();
        check(&input)?;
    }

    /// Offsets returned for truncations of a valid document always land
    /// inside the truncated input, not the original.
    #[test]
    fn truncation_offsets_stay_inside_the_input(cut in 0usize..69) {
        let full = r#"{"op": "partition", "parts": 4, "edges": [[0,1,2],[2,3]], "seed": 7}"#;
        let cut = cut.min(full.len());
        if full.is_char_boundary(cut) {
            check(&full[..cut])?;
        }
    }
}

/// The parser result for protocol-shaped input is actually consumed by the
/// daemon; pin that a fuzz survivor that parses is traversable without
/// panics either.
#[test]
fn parsed_values_traverse_safely() {
    let v = json::parse(r#"{"op": "update", "updates": [{"op": "add_vertex"}]}"#).unwrap();
    assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("update"));
    let updates = v.get("updates").and_then(JsonValue::as_array).unwrap();
    assert_eq!(updates.len(), 1);
    assert!(v.get("missing").is_none());
}
