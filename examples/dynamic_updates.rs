//! Dynamic updates: keep a partition alive while the hypergraph changes.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```
//!
//! Workloads rarely stand still: tasks spawn, links appear, tasks retire.
//! Repartitioning from scratch after every change throws away both the
//! partitioner's work and — worse — the data locality of every vertex that
//! did not move. This example walks the resident alternative:
//!
//! 1. partition once through the job API and keep the session resident
//!    (`PartitionJob::run_dynamic`),
//! 2. apply a batch of `GraphUpdate`s — the session restreams only the
//!    updated vertices and their distinct-neighbour ring,
//! 3. look up placements and read the `UpdateReport`, which extends the
//!    usual quality metrics with what the batch cost in migrated vertices
//!    and cost-matrix-weighted bytes.
//!
//! The same session type backs the long-lived daemon: `hyperpraw serve`
//! answers these operations as newline-delimited JSON over TCP or stdio.

use hyperpraw::dynamic::GraphUpdate;
use hyperpraw::hypergraph::generators::{mesh_hypergraph, MeshConfig};
use hyperpraw::prelude::*;

fn main() {
    println!("== dynamic repartitioning ==\n");

    // 1. A 1 500-vertex FEM-style mesh, partitioned once, kept resident.
    let hg = mesh_hypergraph(&MeshConfig::new(1_500, 12));
    println!("initial hypergraph     : {hg}");
    let mut session = PartitionJob::new(Algorithm::HyperPrawBasic)
        .partitions(8)
        .seed(42)
        .run_dynamic(&hg)
        .expect("valid dynamic configuration");
    let initial = session.initial_report();
    println!(
        "initial partition      : cut {} | comm cost {:.1} | imbalance {:.3}\n",
        initial.hyperedge_cut.unwrap_or(0),
        initial.comm_cost.unwrap_or(f64::NAN),
        initial.imbalance,
    );

    // 2. The workload grows: four new tasks arrive and wire themselves
    //    into the mesh, one region gains a shared variable, one task
    //    retires. One batch, applied atomically.
    let n = hg.num_vertices() as u32;
    let mut batch = vec![];
    for i in 0..4u32 {
        batch.push(GraphUpdate::AddVertex { weight: 1.0 });
        batch.push(GraphUpdate::AddHyperedge {
            pins: vec![n + i, i * 300, i * 300 + 7],
            weight: 1.0,
        });
    }
    batch.push(GraphUpdate::AddPin {
        edge: 12,
        vertex: 900,
    });
    batch.push(GraphUpdate::RemoveVertex { vertex: 77 });
    let update = session.update(&batch).expect("valid update batch");

    println!("applied {} updates:", batch.len());
    println!(
        "  dirty set restreamed : {} vertices ({} new), adjacency {}",
        update.dirty_vertices,
        update.new_vertices.len(),
        if update.rebuilt_adjacency {
            "rebuilt"
        } else {
            "patched in place"
        },
    );
    println!(
        "  migration            : {} vertices moved ({:.2}% of the graph), {:.1} cost-weighted bytes",
        update.migration.vertices_moved,
        100.0 * update.migration.moved_fraction,
        update.migration.bytes_moved,
    );
    println!(
        "  post-update quality  : cut {} | comm cost {:.1} | imbalance {:.3}\n",
        update.report.hyperedge_cut.unwrap_or(0),
        update.report.comm_cost.unwrap_or(f64::NAN),
        update.report.imbalance,
    );

    // 3. Lookups answer from the resident assignment; tombstoned vertices
    //    are gone, new vertices are placed.
    for v in [0u32, 77, n, n + 3] {
        match session.lookup(v) {
            Some(part) => println!("vertex {v:>4} -> partition {part}"),
            None => println!("vertex {v:>4} -> removed"),
        }
    }

    println!(
        "\nThe batch only restreamed the updated vertices and their neighbour ring — the rest\n\
         of the assignment is untouched, so migration stays proportional to the change, not\n\
         to the graph. `hyperpraw serve` exposes exactly this loop as a JSON protocol."
    );
}
