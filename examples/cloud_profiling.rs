//! Partitioning for an *unknown* architecture discovered through profiling —
//! the cloud scenario the paper uses to motivate profiling-based discovery
//! (§4.2: "an advantage in environments where the architecture is not known,
//! or when it is known but unreliable due to contextual circumstances").
//!
//! ```text
//! cargo run --release --example cloud_profiling
//! ```
//!
//! The application is given a set of VMs whose placement (same host, same
//! rack, different zone) it cannot query. The example shows that
//!
//! 1. the ring profiler recovers the hidden locality structure from timing
//!    alone,
//! 2. HyperPRAW-aware exploits it without any machine-specific code,
//! 3. when the scheduler hands out a *different* allocation, re-profiling
//!    adapts the partitioning (the paper's point about re-profiling per
//!    job), while a stale cost matrix loses part of the benefit.

use hyperpraw::hypergraph::generators::{powerlaw_hypergraph, PowerLawConfig};
use hyperpraw::prelude::*;
use hyperpraw::topology::hierarchy::RankMapping;

/// Builds the per-rank link model of a cloud allocation: the hidden machine
/// plus a placement of ranks onto its VMs.
fn allocation(machine: &MachineModel, placement_seed: u64) -> (RankMapping, LinkModel) {
    let procs = machine.num_units();
    let mapping = if placement_seed == 0 {
        RankMapping::block(procs)
    } else {
        RankMapping::scattered(procs, placement_seed)
    };
    let nominal = BandwidthMatrix::from_machine(machine, 0.1, 99);
    let mut data = vec![0.0; procs * procs];
    for a in 0..procs {
        for b in 0..procs {
            data[a * procs + b] = if a == b {
                nominal.get(a, b)
            } else {
                nominal.get(mapping.unit_of(a), mapping.unit_of(b))
            };
        }
    }
    (
        mapping,
        LinkModel::from_bandwidth(BandwidthMatrix::from_raw(procs, data), 3.0),
    )
}

fn main() {
    let procs = 64usize;
    println!("== Cloud profiling example: partitioning an unknown topology ==\n");

    // A graph-analytics-style workload: power-law connectivity.
    let hg = powerlaw_hypergraph(&PowerLawConfig {
        num_vertices: 20_000,
        num_hyperedges: 20_000,
        avg_cardinality: 4.0,
        seed: 5,
        ..PowerLawConfig::default()
    });
    println!("workload hypergraph   : {hg}");

    // The hidden infrastructure: 8-vCPU VMs, 8 hosts per rack, slow
    // inter-zone links. The application never sees this object.
    let machine = MachineModel::cloud_like(procs, 8);
    println!("hidden infrastructure : {machine}\n");

    // --- Job allocation #1 -------------------------------------------------
    let (_, link1) = allocation(&machine, 0);
    let profiled1 = RingProfiler::default().profile(&link1);
    let cost1 = CostMatrix::from_bandwidth(&profiled1);
    println!(
        "profiled allocation #1: bandwidth spread {:.0}..{:.0} MB/s (ratio {:.1}x) — locality discovered",
        profiled1.min_off_diagonal(),
        profiled1.max_off_diagonal(),
        profiled1.max_off_diagonal() / profiled1.min_off_diagonal()
    );

    let bench1 = SyntheticBenchmark::new(
        link1,
        BenchmarkConfig {
            message_bytes: 256,
            supersteps: 5,
            ..BenchmarkConfig::default()
        },
    );
    // Both variants go through the unified job API; only the algorithm and
    // the cost matrix differ.
    let basic = PartitionJob::new(Algorithm::HyperPrawBasic)
        .partitions(procs as u32)
        .run(&hg)
        .expect("valid configuration")
        .partition;
    let aware1 = PartitionJob::new(Algorithm::HyperPrawAware)
        .cost(cost1.clone())
        .run(&hg)
        .expect("valid configuration")
        .partition;
    let t_basic = bench1.run(&hg, &basic).total_time_us;
    let t_aware = bench1.run(&hg, &aware1).total_time_us;
    println!(
        "allocation #1 runtime : basic {:.2} ms, aware {:.2} ms ({:.2}x faster)\n",
        t_basic / 1e3,
        t_aware / 1e3,
        t_basic / t_aware
    );

    // --- Job allocation #2: the scheduler scatters the VMs differently -----
    let (_, link2) = allocation(&machine, 7);
    let profiled2 = RingProfiler::default().profile(&link2);
    let cost2 = CostMatrix::from_bandwidth(&profiled2);
    let bench2 = SyntheticBenchmark::new(
        link2,
        BenchmarkConfig {
            message_bytes: 256,
            supersteps: 5,
            ..BenchmarkConfig::default()
        },
    );
    // Re-profile and re-partition (what the paper recommends per job) vs
    // reusing the stale cost matrix from allocation #1.
    let aware_fresh = PartitionJob::new(Algorithm::HyperPrawAware)
        .cost(cost2)
        .run(&hg)
        .expect("valid configuration")
        .partition;
    let t_stale = bench2.run(&hg, &aware1).total_time_us;
    let t_fresh = bench2.run(&hg, &aware_fresh).total_time_us;
    let t_basic2 = bench2.run(&hg, &basic).total_time_us;
    println!("allocation #2 (different VM placement):");
    println!("  basic (oblivious)            : {:.2} ms", t_basic2 / 1e3);
    println!("  aware, stale profile (#1)    : {:.2} ms", t_stale / 1e3);
    println!("  aware, re-profiled (#2)      : {:.2} ms", t_fresh / 1e3);
    println!(
        "\nspeedup over the oblivious placement on allocation #2: stale profile {:.2}x, \
         re-profiled {:.2}x.",
        t_basic2 / t_stale,
        t_basic2 / t_fresh
    );
    println!(
        "The paper's recommendation is to re-profile each new allocation: a stale cost matrix\n\
         targets links that may no longer be fast. How much that matters grows with the size of\n\
         the job and the spread of the infrastructure's bandwidth tiers — on this small 64-vCPU\n\
         example the placements differ only mildly, while a scattered multi-zone allocation at\n\
         production scale shifts most of the traffic onto the slow tier (increase the vCPU count\n\
         and the workload size to see the gap widen)."
    );
}
