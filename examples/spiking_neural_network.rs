//! Distributing a spiking neural network simulation — one of the two
//! application domains the paper's future-work section names as the natural
//! users of HyperPRAW (the authors' own SNN work models communication
//! sparsity with hypergraphs).
//!
//! ```text
//! cargo run --release --example spiking_neural_network
//! ```
//!
//! A synthetic cortical-column-like network is built: neuron populations
//! with dense local connectivity plus sparse long-range projections. Each
//! neuron's axonal target set becomes one hyperedge (when the neuron spikes,
//! its spike must reach every partition hosting one of its targets — exactly
//! the communication the hyperedge models). The network is then distributed
//! over an ARCHER-like machine with round-robin placement, the Zoltan-like
//! baseline, HyperPRAW-basic and HyperPRAW-aware, and the per-timestep
//! communication cost of the simulation is compared on the synthetic
//! benchmark.

use hyperpraw::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the axonal-projection hypergraph of a layered network:
/// `populations` populations of `neurons_per_population` neurons laid out in
/// a ring; every neuron projects to `local_fanout` targets inside its own or
/// the neighbouring population and `remote_fanout` targets anywhere.
fn build_snn_hypergraph(
    populations: usize,
    neurons_per_population: usize,
    local_fanout: usize,
    remote_fanout: usize,
    seed: u64,
) -> Hypergraph {
    let n = populations * neurons_per_population;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::with_capacity(n, n);
    builder.name("synthetic-snn");
    for neuron in 0..n {
        let population = neuron / neurons_per_population;
        let mut targets = vec![neuron as u32];
        // Local targets: own population and the next one (a cortical
        // feed-forward motif).
        for _ in 0..local_fanout {
            let target_pop = (population + rng.gen_range(0..2usize)) % populations;
            let t = target_pop * neurons_per_population + rng.gen_range(0..neurons_per_population);
            targets.push(t as u32);
        }
        // Sparse long-range projections.
        for _ in 0..remote_fanout {
            targets.push(rng.gen_range(0..n) as u32);
        }
        builder.add_hyperedge(targets);
    }
    builder.ensure_vertices(n);
    builder.build()
}

fn main() {
    let procs = 48usize;
    println!("== Spiking neural network distribution example ==\n");

    let hg = build_snn_hypergraph(24, 250, 12, 3, 7);
    println!("network hypergraph     : {hg}");
    println!(
        "avg axonal fan-out     : {:.1} targets per neuron\n",
        hg.avg_cardinality() - 1.0
    );

    // The machine and its profile.
    let machine = MachineModel::archer_like(procs);
    let link = LinkModel::from_machine(&machine, 0.05, 11);
    let bandwidth = RingProfiler::default().profile(&link);
    let cost = CostMatrix::from_bandwidth(&bandwidth);

    // Candidate distributions of neurons over the 48 processes — one
    // PartitionJob per strategy, all sharing the profiled cost matrix.
    let reports: Vec<PartitionReport> = [
        Algorithm::RoundRobin,
        Algorithm::MultilevelBaseline,
        Algorithm::HyperPrawBasic,
        Algorithm::HyperPrawAware,
    ]
    .into_iter()
    .map(|algorithm| {
        PartitionJob::new(algorithm)
            .cost(cost.clone())
            .run(&hg)
            .expect("valid configuration")
    })
    .collect();

    // Each simulated timestep, every spike crosses partition boundaries to
    // reach remote targets: the synthetic benchmark with several supersteps
    // models a run of the SNN simulation loop.
    let bench = SyntheticBenchmark::new(
        link,
        BenchmarkConfig {
            message_bytes: 64, // one spike event
            supersteps: 10,    // ten biological timesteps
            ..BenchmarkConfig::default()
        },
    );

    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>16}",
        "placement", "SOED", "comm cost", "imbalance", "10-step time (ms)"
    );
    for report in &reports {
        let run = bench.run(&hg, &report.partition);
        println!(
            "{:<16} {:>12} {:>14.0} {:>12.3} {:>16.2}",
            report.algorithm.name(),
            report.soed.unwrap_or(0),
            report.comm_cost.unwrap_or(f64::NAN),
            report.imbalance,
            run.total_time_us / 1e3
        );
    }

    println!(
        "\nThe spike traffic of the aware placement follows the machine's fast links, which is\n\
         what lets communication-bound SNN simulations scale (paper §8.2)."
    );
}
