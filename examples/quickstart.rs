//! Quickstart: partition a hypergraph for a heterogeneous machine through
//! the unified job API and see why architecture-awareness matters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks the full HyperPRAW pipeline on a small FEM-style
//! hypergraph and a 48-core ARCHER-like machine:
//!
//! 1. profile the machine's peer-to-peer bandwidth (mpiGraph substitute),
//! 2. partition with several strategies through the **one front door** —
//!    `PartitionJob::new(algorithm) … .run(&hg)` — from the Zoltan-like
//!    multilevel baseline to HyperPRAW-aware (profiled costs),
//! 3. compare the common `PartitionReport` each run returns (hyperedge
//!    cut, SOED, partitioning communication cost, imbalance, wall-clock)
//!    and the simulated runtime of the paper's synthetic
//!    communication-bound benchmark.

use hyperpraw::hypergraph::generators::{sat_hypergraph, SatConfig};
use hyperpraw::prelude::*;

fn main() {
    let cores = 48;
    println!("== HyperPRAW quickstart ==\n");

    // A communication-bound application modelled as a hypergraph: the dual
    // hypergraph of a SAT instance (clauses are vertices, every variable's
    // occurrence list is a hyperedge) — the same family as the paper's
    // `sat14_itox_vc1130 dual` benchmark, on which restreaming shines.
    let hg = sat_hypergraph(&SatConfig::dual(3_000, 9_000, 2.6));
    println!("application hypergraph : {hg}");

    // The machine: 48 cores (2 ARCHER nodes), profiled through the simulated
    // ring benchmark. HyperPRAW only ever sees the profiled matrix.
    let machine = MachineModel::archer_like(cores);
    println!("machine                : {machine}");
    let link = LinkModel::from_machine(&machine, 0.05, 42);
    let bandwidth = RingProfiler::default().profile(&link);
    let cost = CostMatrix::from_bandwidth(&bandwidth);
    println!(
        "profiled bandwidth     : {:.0} .. {:.0} MB/s\n",
        bandwidth.min_off_diagonal(),
        bandwidth.max_off_diagonal()
    );

    // Every strategy is one PartitionJob away: same builder, same report.
    // The oblivious algorithms ignore the cost matrix for partitioning but
    // are evaluated against it, exactly as the paper scores Figure 4C.
    let strategies = [
        Algorithm::MultilevelBaseline,
        Algorithm::HyperPrawBasic,
        Algorithm::HyperPrawAware,
    ];
    let reports: Vec<PartitionReport> = strategies
        .iter()
        .map(|&algorithm| {
            PartitionJob::new(algorithm)
                .cost(cost.clone())
                .seed(42)
                .run(&hg)
                .expect("valid quickstart configuration")
        })
        .collect();

    // The synthetic benchmark: every cut hyperedge exchanges messages between
    // its pins each superstep.
    let bench = SyntheticBenchmark::new(link, BenchmarkConfig::default());

    println!(
        "{:<18} {:>10} {:>10} {:>14} {:>10} {:>14}",
        "strategy", "cut", "SOED", "comm cost", "imbalance", "sim time (ms)"
    );
    let mut baseline_time = None;
    for report in &reports {
        let runtime = bench.run(&hg, &report.partition);
        let ms = runtime.total_time_us / 1e3;
        let speedup = match baseline_time {
            None => {
                baseline_time = Some(ms);
                String::from("1.00x")
            }
            Some(base) => format!("{:.2}x", base / ms),
        };
        println!(
            "{:<18} {:>10} {:>10} {:>14.1} {:>10.3} {:>10.2} ({})",
            report.algorithm.name(),
            report.hyperedge_cut.unwrap_or(0),
            report.soed.unwrap_or(0),
            report.comm_cost.unwrap_or(f64::NAN),
            report.imbalance,
            ms,
            speedup
        );
    }

    // Machine-readable results fall out of the same report.
    let aware = reports.last().expect("three strategies ran");
    println!(
        "\nJSON report of the aware run (first lines):\n{}\n  ...",
        aware
            .to_json()
            .lines()
            .take(7)
            .collect::<Vec<_>>()
            .join("\n")
    );

    println!(
        "\nHyperPRAW's restreaming finds placements whose traffic matches the machine: the aware\n\
         variant routes cut hyperedges over fast intra-node links, which lowers the partitioning\n\
         communication cost and the simulated runtime even when the raw cut is comparable.\n\
         Run the fig4/fig5 binaries in crates/bench to reproduce the full paper comparison."
    );
}
