//! Distributing repeated sparse matrix–vector multiplication (SpMV) — the
//! second application domain the paper highlights (hypergraph partitioning
//! for sparse matrices goes back to Catalyurek & Aykanat's row-net model).
//!
//! ```text
//! cargo run --release --example sparse_matrix_spmv
//! ```
//!
//! A structurally symmetric sparse matrix is generated (FEM-like stencil
//! pattern), converted to its row-net hypergraph through the same code path
//! used for `.mtx` files, and distributed across a dual-socket commodity
//! cluster. In a 1-D row-wise SpMV, owning row `i` means needing the vector
//! entries of every column with a nonzero in that row — so every cut
//! hyperedge is a remote vector fetch per iteration. The example compares
//! the iteration time of an iterative solver (many SpMV supersteps) under
//! the different partitioners.

use hyperpraw::hypergraph::io::matrix_market::{CoordinateMatrix, SparseMatrixModel};
use hyperpraw::prelude::*;

/// Builds a structurally symmetric sparse matrix with a 3-D stencil pattern
/// (the nonzero structure of a FEM discretisation).
fn build_stencil_matrix(n: usize, stencil: usize) -> CoordinateMatrix {
    let side = (n as f64).cbrt().ceil() as i64;
    let mut entries = Vec::new();
    let index = |x: i64, y: i64, z: i64| -> Option<u32> {
        if x < 0 || y < 0 || z < 0 || x >= side || y >= side || z >= side {
            return None;
        }
        let v = (z * side * side + y * side + x) as usize;
        (v < n).then_some(v as u32)
    };
    for v in 0..n as u32 {
        let v64 = v as i64;
        let (x, y, z) = (v64 % side, (v64 / side) % side, v64 / (side * side));
        entries.push((v, v)); // diagonal
        let offsets: &[(i64, i64, i64)] = &[
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
            (1, 1, 0),
            (-1, -1, 0),
        ];
        for &(dx, dy, dz) in offsets.iter().take(stencil) {
            if let Some(u) = index(x + dx, y + dy, z + dz) {
                entries.push((v, u));
                entries.push((u, v));
            }
        }
    }
    entries.sort_unstable();
    entries.dedup();
    CoordinateMatrix {
        rows: n,
        cols: n,
        entries,
    }
}

fn main() {
    let procs = 32usize;
    let solver_iterations = 50usize;
    println!("== Sparse matrix–vector multiplication example ==\n");

    // The matrix and its row-net hypergraph.
    let matrix = build_stencil_matrix(8_000, 8);
    let hg = matrix.to_hypergraph(SparseMatrixModel::RowNet, "stencil-spmv");
    println!(
        "matrix                : {} x {} with {} nonzeros",
        matrix.rows,
        matrix.cols,
        matrix.entries.len()
    );
    println!("row-net hypergraph    : {hg}\n");

    // A commodity dual-socket cluster this time (not ARCHER): the algorithm
    // only sees the profiled cost matrix, so nothing else changes.
    let machine = MachineModel::dual_socket_cluster(procs, 8);
    let link = LinkModel::from_machine(&machine, 0.08, 3);
    let bandwidth = RingProfiler::default().profile(&link);
    let cost = CostMatrix::from_bandwidth(&bandwidth);

    // Stencil matrices are extremely regular: under the default FENNEL α the
    // balance penalty of leaving the (already perfectly balanced) round-robin
    // start outweighs the marginal communication gain of each single move, so
    // the stream barely improves. Starting with a smaller α lets the early
    // streams cluster rows by their stencil neighbourhood first and restore
    // balance in the later, tempered streams — the tuning knob the library
    // exposes for such workloads.
    let spmv_alpha =
        HyperPrawConfig::fennel_alpha(procs as u32, hg.num_vertices(), hg.num_hyperedges()) / 20.0;
    // One job per strategy; the initial-α tuning applies only to the
    // HyperPRAW variants (the builder setter is a no-op for the others).
    let reports: Vec<PartitionReport> = [
        Algorithm::RoundRobin,
        Algorithm::MultilevelBaseline,
        Algorithm::HyperPrawBasic,
        Algorithm::HyperPrawAware,
    ]
    .into_iter()
    .map(|algorithm| {
        PartitionJob::new(algorithm)
            .cost(cost.clone())
            .initial_alpha(spmv_alpha)
            .run(&hg)
            .expect("valid configuration")
    })
    .collect();

    // Each solver iteration performs one SpMV: remote vector entries are
    // fetched for every cut hyperedge.
    let bench = SyntheticBenchmark::new(
        link,
        BenchmarkConfig {
            message_bytes: 8, // one f64 vector entry
            supersteps: solver_iterations,
            ..BenchmarkConfig::default()
        },
    );

    println!(
        "{:<16} {:>10} {:>14} {:>12} {:>20}",
        "partitioner", "cut", "comm cost", "imbalance", "50-iteration time (ms)"
    );
    let mut first = None;
    for report in &reports {
        let run = bench.run(&hg, &report.partition);
        let ms = run.total_time_us / 1e3;
        let speedup = match first {
            None => {
                first = Some(ms);
                "1.00x".to_string()
            }
            Some(base) => format!("{:.2}x", base / ms),
        };
        println!(
            "{:<16} {:>10} {:>14.0} {:>12.3} {:>14.2} ({})",
            report.algorithm.name(),
            report.hyperedge_cut.unwrap_or(0),
            report.comm_cost.unwrap_or(f64::NAN),
            report.imbalance,
            ms,
            speedup
        );
    }

    println!(
        "\nFor an iterative solver the partition is computed once and reused for thousands of\n\
         SpMVs, so even modest per-iteration communication savings dominate the setup cost."
    );
}
